// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "tree/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/parse.h"
#include "common/float_round.h"
#include "obs/flight_recorder.h"
#include "sched/thread_pool.h"
#include "tpbr/integrals.h"
#include "tpbr/intersect.h"
#include "tpbr/tpbr_compute.h"
#include "tree/meta_format.h"

namespace rexp {
namespace {

// Slot layout and field offsets live in tree/meta_format.h, shared with
// the offline verifier.
constexpr int kMaxLevels = kMetaMaxLevels;

// Number of area-enlargement-best candidates to which the quadratic R*
// overlap-enlargement test is restricted (the R*-tree paper's own
// optimization; it suggests 32).
constexpr int kOverlapCandidates = 32;

}  // namespace

template <int kDims>
Tpbr<kDims> MakeMovingPoint(const Vec<kDims>& pos, const Vec<kDims>& vel,
                            Time t_obs, Time t_exp) {
  Tpbr<kDims> p;
  for (int d = 0; d < kDims; ++d) {
    double v = ToFloatExactly(vel[d]);
    // Normalize to reference time 0 using the float velocity so the record
    // round-trips through 32-bit page storage exactly.
    p.lo[d] = p.hi[d] = ToFloatExactly(pos[d] - v * t_obs);
    p.vlo[d] = p.vhi[d] = v;
  }
  p.t_exp = ToFloatExactly(t_exp);
  return p;
}

namespace {

// Records live on pages in 32-bit precision, so the index only ever deals
// in float-valued coordinates. Canonicalizing at the API boundary keeps
// every in-memory copy equal to its on-page round-trip; without this, a
// record that arrived with excess precision would silently change value
// on the first evict/reload and Delete's exact-match scan could never
// find it again.
template <int kDims>
Tpbr<kDims> CanonicalRecord(const Tpbr<kDims>& point) {
  Tpbr<kDims> p = point;
  for (int d = 0; d < kDims; ++d) {
    p.lo[d] = ToFloatExactly(point.lo[d]);
    p.hi[d] = ToFloatExactly(point.hi[d]);
    p.vlo[d] = ToFloatExactly(point.vlo[d]);
    p.vhi[d] = ToFloatExactly(point.vhi[d]);
  }
  p.t_exp = ToFloatExactly(point.t_exp);
  return p;
}

}  // namespace

template <int kDims>
Tree<kDims>::Tree(const TreeConfig& config, PageFile* file, PrivateTag)
    : config_(config),
      file_(file),
      buffer_(file, config.buffer_frames),
      codec_(config.page_size, config.StoresVelocities(),
             config.store_tpbr_expiration),
      rng_(config.seed),
      horizon_(config.initial_ui, config.horizon_alpha,
               static_cast<uint32_t>(codec_.leaf_capacity())) {
  config_.Validate();
  REXP_CHECK(file->page_size() == config.page_size);
}

template <int kDims>
StatusOr<std::unique_ptr<Tree<kDims>>> Tree<kDims>::Open(
    const TreeConfig& config, PageFile* file) {
  std::unique_ptr<Tree> tree(new Tree(config, file, PrivateTag{}));
  REXP_RETURN_IF_ERROR(tree->Init());
  return tree;
}

template <int kDims>
Tree<kDims>::Tree(const TreeConfig& config, PageFile* file)
    : Tree(config, file, PrivateTag{}) {
  REXP_CHECK_OK(Init());
}

template <int kDims>
Status Tree<kDims>::Init() {
  if (config_.io_max_retries > 0) {
    file_->set_retry_policy({config_.io_max_retries,
                             config_.io_backoff_initial_us,
                             config_.io_backoff_multiplier,
                             config_.io_backoff_max_us});
  }
  if (file_->allocated_pages() == 0) {
    // Fresh file: reserve the two meta slots and make the empty tree
    // durable (epoch 1 lands in slot 1; slot 0 stays zero until epoch 2).
    for (PageId slot = 0; slot < kNumMetaSlots; ++slot) {
      REXP_ASSIGN_OR_RETURN(PageId id, file_->Allocate());
      REXP_CHECK(id == slot);
    }
    REXP_RETURN_IF_ERROR(Commit());
  } else {
    if (file_->capacity_pages() < kNumMetaSlots) {
      return Status::Corruption("index file holds no complete meta slot");
    }
    // No other thread can reach the tree yet, but recovery mutates the
    // epoch-guarded state (DAT, parent map), so it runs under the writer
    // epoch like every other mutation — uncontended here.
    sched::WriterMutexLock epoch(&epoch_mu_);
    REXP_RETURN_IF_ERROR(LoadMeta());
    if (root_ != kInvalidPageId) {
      REXP_RETURN_IF_ERROR(PinRoot(root_));
    }
    // The direct-access table and parent map are in-memory only; rebuild
    // them from a leaf walk of the recovered state.
    REXP_RETURN_IF_ERROR(RebuildDat());
  }
  if (config_.crash_consistent) file_->set_deferred_free(true);
  open_ok_ = true;
  return Status::OK();
}

template <int kDims>
Tree<kDims>::~Tree() {
  if (open_ok_) {
    Status s = Commit();
    if (!s.ok()) {
      std::fprintf(stderr, "Tree: commit on close failed: %s\n",
                   s.ToString().c_str());
    }
  }
  REXP_CHECK_OK(PinRoot(kInvalidPageId));
}

// ---------------------------------------------------------------------------
// Metadata persistence.

// raw-page-ok: serializes into the caller's pinned meta frame.
template <int kDims>
void Tree<kDims>::SerializeMeta(uint64_t epoch, Page* page) const {
  page->Clear();
  uint32_t off = 0;
  page->Write<uint32_t>(off, kMetaMagic);
  off += 4;
  page->Write<uint32_t>(off, kMetaVersion);
  off += 4;
  page->Write<uint32_t>(off, static_cast<uint32_t>(kDims));
  off += 4;
  off += 4;  // Reserved.
  page->Write<uint64_t>(off, epoch);
  off += 8;
  page->Write<uint32_t>(off, root_);
  off += 4;
  page->Write<uint32_t>(off, static_cast<uint32_t>(height_));
  off += 4;
  // Device extent at commit time: pages at or beyond this are uncommitted
  // growth and are reclaimed on recovery.
  page->Write<uint64_t>(off, file_->capacity_pages());
  off += 8;
  page->Write<uint64_t>(off, underfull_remnants_);
  off += 8;
  page->Write<double>(off, horizon_.ui());
  off += 8;
  for (int l = 0; l < kMaxLevels; ++l) {
    uint64_t n = l < static_cast<int>(level_counts_.size())
                     ? level_counts_[l]
                     : 0;
    page->Write<uint64_t>(off, n);
    off += 8;
  }
  // Persist the device free list (as much of it as fits on the meta page)
  // so that page reuse resumes after a re-open; the overflow is counted as
  // leaked.
  const std::vector<PageId>& free_ids = file_->free_list();
  uint32_t max_ids = (config_.page_size - kMetaFreeListOffset) / 4;
  uint32_t persisted = static_cast<uint32_t>(
      std::min<size_t>(free_ids.size(), max_ids));
  uint64_t leaked = file_->leaked_pages() + (free_ids.size() - persisted);
  page->Write<uint32_t>(off, persisted);
  off += 4;
  page->Write<uint64_t>(off, leaked);
  off += 8;
  REXP_CHECK(off == kMetaFreeListOffset);
  for (uint32_t i = 0; i < persisted; ++i) {
    page->Write<uint32_t>(off, free_ids[i]);
    off += 4;
  }
}

template <int kDims>
Status Tree<kDims>::Commit() {
  sched::WriterMutexLock epoch(&epoch_mu_);
  const uint64_t io_before = buffer_.stats().Total();
  if (tracer_ != nullptr) tracer_->BeginSpan("commit");
  Status s = CommitLocked();
  const uint64_t io = buffer_.stats().Total() - io_before;
  if (tracer_ != nullptr) {
    tracer_->EndSpan({{"ok", s.ok() ? 1.0 : 0.0},
                      {"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(obs::FlightOp::kCommit, meta_epoch_, 0,
                                     s.code(), io);
  return s;
}

template <int kDims>
void Tree<kDims>::WriteBackSpanned() {
  const uint64_t before = buffer_.stats().Total();
  if (tracer_ != nullptr) tracer_->BeginSpan("write_back");
  if (config_.crash_consistent) {
    REXP_CHECK_OK(CommitLocked());
  } else {
    REXP_CHECK_OK(buffer_.FlushDirty());
  }
  if (tracer_ != nullptr) {
    tracer_->EndSpan(
        {{"io", static_cast<double>(buffer_.stats().Total() - before)}});
  }
}

template <int kDims>
Status Tree<kDims>::CommitLocked() {
  REXP_RETURN_IF_ERROR(buffer_.FlushDirty());
  REXP_RETURN_IF_ERROR(file_->Sync());
  // Only now that every node of the new state is durable do the pages the
  // state no longer references become reusable — and only now is the meta
  // slot write safe.
  file_->PublishDeferredFrees();
  const uint64_t epoch = meta_epoch_ + 1;
  Page page(config_.page_size);
  SerializeMeta(epoch, &page);
  REXP_RETURN_IF_ERROR(
      file_->WritePage(static_cast<PageId>(epoch & 1), page));
  REXP_RETURN_IF_ERROR(file_->Sync());
  meta_epoch_ = epoch;
  return Status::OK();
}

template <int kDims>
Status Tree<kDims>::LoadMeta() {
  // Probe both slots; recover from the valid one with the newest epoch.
  Page page(config_.page_size);
  Page best(config_.page_size);
  uint64_t best_epoch = 0;
  int best_slot = -1;
  std::string slot_findings;
  auto note_slot = [&slot_findings](PageId slot, const std::string& why) {
    if (!slot_findings.empty()) slot_findings += "; ";
    slot_findings += "slot " + std::to_string(slot) + ": " + why;
  };
  for (PageId slot = 0; slot < kNumMetaSlots; ++slot) {
    Status s = file_->ReadPage(slot, &page);
    if (!s.ok()) {
      if (s.IsIOError()) return s;  // Device broken, not slot damage.
      ++meta_slot_errors_;
      note_slot(slot, s.message());
      continue;
    }
    if (page.Read<uint32_t>(0) == 0) {
      // An all-zero slot is one never committed to (a fresh file's slot 0,
      // or the older slot of an index committed exactly once) — empty, not
      // damaged.
      note_slot(slot, "empty (never committed)");
      continue;
    }
    if (page.Read<uint32_t>(0) != kMetaMagic ||
        page.Read<uint32_t>(4) != kMetaVersion ||
        page.Read<uint32_t>(8) != static_cast<uint32_t>(kDims)) {
      ++meta_slot_errors_;
      note_slot(slot, "bad magic/version/dims");
      continue;
    }
    const uint64_t epoch = page.Read<uint64_t>(16);
    if (epoch == 0 || (epoch & 1) != slot) {
      ++meta_slot_errors_;
      note_slot(slot, "epoch " + std::to_string(epoch) +
                          " fails slot-parity check");
      continue;
    }
    if (epoch > best_epoch) {
      best_epoch = epoch;
      best_slot = static_cast<int>(slot);
      best = page;
    }
  }
  if (best_slot < 0) {
    return Status::Corruption(
        "no valid meta slot (" + slot_findings +
        "); run `rexp_fsck --salvage` to rebuild from surviving leaf pages");
  }

  uint32_t off = 24;
  root_ = best.Read<uint32_t>(off);
  off += 4;
  height_ = static_cast<int>(best.Read<uint32_t>(off));
  off += 4;
  const uint64_t committed_capacity = best.Read<uint64_t>(off);
  off += 8;
  underfull_remnants_ = best.Read<uint64_t>(off);
  off += 8;
  double ui = best.Read<double>(off);
  off += 8;
  if (height_ < 0 || height_ > kMaxLevels ||
      (root_ == kInvalidPageId) != (height_ == 0) ||
      committed_capacity < kNumMetaSlots ||
      committed_capacity > file_->capacity_pages() ||
      (root_ != kInvalidPageId &&
       (root_ < kNumMetaSlots || root_ >= committed_capacity))) {
    return Status::Corruption("meta slot " + std::to_string(best_slot) +
                              " (epoch " + std::to_string(best_epoch) +
                              ") is internally inconsistent");
  }
  level_counts_.assign(height_, 0);
  for (int l = 0; l < kMaxLevels; ++l) {
    uint64_t n = best.Read<uint64_t>(off);
    off += 8;
    if (l < height_) level_counts_[l] = n;
  }
  if (ui > 0) horizon_.RestoreUi(ui);
  uint32_t persisted = best.Read<uint32_t>(off);
  off += 4;
  uint64_t leaked = best.Read<uint64_t>(off);
  off += 8;
  if (persisted > (config_.page_size - kMetaFreeListOffset) / 4) {
    return Status::Corruption("meta free list overruns the slot");
  }
  std::vector<PageId> free_ids;
  free_ids.reserve(persisted);
  for (uint32_t i = 0; i < persisted; ++i) {
    PageId id = best.Read<uint32_t>(off);
    off += 4;
    if (id < kNumMetaSlots || id >= committed_capacity) {
      return Status::Corruption("meta free list holds invalid page " +
                                std::to_string(id));
    }
    free_ids.push_back(id);
  }
  file_->RestoreFreeList(std::move(free_ids), leaked);
  // Pages the device grew past the committed extent (writes after the
  // last commit, including a torn tail) are unreferenced by the recovered
  // state; reclaim them.
  for (uint64_t id = committed_capacity; id < file_->capacity_pages();
       ++id) {
    file_->Free(static_cast<PageId>(id));
  }
  meta_epoch_ = best_epoch;
  return Status::OK();
}

template <int kDims>
Status Tree<kDims>::PinRoot(PageId new_root) {
  if (pinned_root_ != kInvalidPageId) buffer_.Unpin(pinned_root_);
  pinned_root_ = kInvalidPageId;
  if (new_root != kInvalidPageId) {
    REXP_ASSIGN_OR_RETURN(PageGuard guard, buffer_.Fetch(new_root));
    guard.Release();
    buffer_.Pin(new_root);
    pinned_root_ = new_root;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Node I/O.

template <int kDims>
Node<kDims> Tree<kDims>::ReadNode(PageId id) {
  Node<kDims> node;
  ReadNodeInto(id, &node);
  return node;
}

template <int kDims>
void Tree<kDims>::ReadNodeInto(PageId id, Node<kDims>* out) {
  PageGuard guard = buffer_.FetchOrDie(id);
  codec_.Decode(*guard, out);
  const int lvl =
      std::min(out->level, TreeOpStats::kMaxTrackedLevels - 1);
  op_stats_.level_reads[lvl].fetch_add(1, std::memory_order_relaxed);
}

template <int kDims>
void Tree<kDims>::NoteNodeStored(PageId id, const Node<kDims>& node) {
  // Every entry placement flows through a node write, so this is the one
  // point that keeps the DAT's leaf pins and the parent map current.
  if (node.IsLeaf()) {
    for (const NodeEntry<kDims>& e : node.entries) {
      dat_.NoteLeaf(e.id, id);
    }
  } else {
    for (const NodeEntry<kDims>& e : node.entries) {
      parent_of_.Put(e.id, id);
    }
  }
}

template <int kDims>
void Tree<kDims>::WriteNode(PageId id, const Node<kDims>& node) {
  PageGuard guard = buffer_.FetchOrDie(id, PageIntent::kWrite);
  codec_.Encode(node, guard.mutable_page());
  guard.MarkDirty();
  NoteNodeStored(id, node);
}

template <int kDims>
PageId Tree<kDims>::StoreNode(PageId id, const Node<kDims>& node) {
  if (!config_.crash_consistent) {
    WriteNode(id, node);
    return id;
  }
  // Copy-on-write: relocate the node to a fresh page and quarantine the
  // old one (deferred free), so every page the last committed state
  // references stays untouched until the next commit is durable.
  FreeNode(id);
  return AllocNode(node);
}

template <int kDims>
PageId Tree<kDims>::AllocNode(const Node<kDims>& node) {
  PageId id;
  PageGuard guard = buffer_.NewPageOrDie(&id);
  codec_.Encode(node, guard.mutable_page());
  NoteNodeStored(id, node);
  return id;
}

template <int kDims>
void Tree<kDims>::FreeNode(PageId id) {
  buffer_.FreePage(id);
  parent_of_.Erase(id);
}

template <int kDims>
void Tree<kDims>::ReleaseLeafRefs(const Node<kDims>& node) {
  for (const NodeEntry<kDims>& e : node.entries) {
    dat_.ReleaseRef(e.id);
  }
}

template <int kDims>
void Tree<kDims>::FreeSubtree(PageId id, int level) {
  if (level > 0) {
    Node<kDims> node = ReadNode(id);
    REXP_CHECK(node.level == level);
    for (const NodeEntry<kDims>& e : node.entries) {
      FreeSubtree(e.id, level - 1);
    }
    level_counts_[level] -= node.entries.size();
  } else {
    Node<kDims> node = ReadNode(id);
    ReleaseLeafRefs(node);
    level_counts_[0] -= node.entries.size();
  }
  FreeNode(id);
}

// ---------------------------------------------------------------------------
// Expiration handling.

template <int kDims>
bool Tree<kDims>::EntryLive(const NodeEntry<kDims>& e, Time now) const {
  if (!config_.expire_entries) return true;
  return e.region.t_exp >= now;
}

template <int kDims>
void Tree<kDims>::PurgeExpired(Node<kDims>* node, Time now,
                               uint32_t skip_id) {
  if (!config_.expire_entries) return;
  size_t kept = 0;
  uint64_t subtrees = 0;
  for (size_t i = 0; i < node->entries.size(); ++i) {
    NodeEntry<kDims>& e = node->entries[i];
    bool keep = EntryLive(e, now) || (!node->IsLeaf() && e.id == skip_id);
    if (keep) {
      node->entries[kept++] = e;
    } else if (node->IsLeaf()) {
      dat_.ReleaseRef(e.id);
    } else {
      // Dropping an expired internal entry deallocates its whole subtree
      // (paper Section 4.3).
      FreeSubtree(e.id, node->level - 1);
      ++subtrees;
    }
  }
  size_t removed = node->entries.size() - kept;
  if (removed > 0) {
    level_counts_[node->level] -= removed;
    node->entries.resize(kept);
    op_stats_.purged_entries += removed;
    op_stats_.purged_subtrees += subtrees;
    if (tracer_ != nullptr) {
      tracer_->Emit("purge", {{"level", static_cast<double>(node->level)},
                              {"removed", static_cast<double>(removed)},
                              {"subtrees", static_cast<double>(subtrees)},
                              {"now", now}});
    }
  }
}

// ---------------------------------------------------------------------------
// Bounds and heuristics.

template <int kDims>
double Tree<kDims>::TpbrHorizonForLevel(int parent_level) const {
  uint64_t level_entries =
      parent_level < static_cast<int>(level_counts_.size())
          ? level_counts_[parent_level]
          : 1;
  uint64_t leaf_entries = level_counts_.empty() ? 0 : level_counts_[0];
  return horizon_.TpbrHorizon(level_entries, leaf_entries);
}

template <int kDims>
Tpbr<kDims> Tree<kDims>::ComputeBound(const Node<kDims>& node, Time now) {
  std::vector<Tpbr<kDims>>& regions = bound_scratch_;
  regions.clear();
  regions.reserve(node.entries.size());
  for (const NodeEntry<kDims>& e : node.entries) {
    if (EntryLive(e, now)) regions.push_back(e.region);
  }
  if (regions.empty()) {
    // A node with no live entries (possible only transiently); bound
    // whatever is physically there.
    for (const NodeEntry<kDims>& e : node.entries) {
      regions.push_back(e.region);
    }
  }
  REXP_CHECK(!regions.empty());
  ++op_stats_.tpbr_recomputes;
  if (tracer_ != nullptr) {
    tracer_->Emit("tpbr_recompute",
                  {{"level", static_cast<double>(node.level)},
                   {"entries", static_cast<double>(node.entries.size())}});
  }
  TpbrKind kind = config_.expire_entries ? config_.tpbr_kind
                                         : TpbrKind::kConservative;
  return ComputeTpbr<kDims>(kind, regions, now,
                            TpbrHorizonForLevel(node.level + 1), &rng_);
}

template <int kDims>
TpbrKind Tree<kDims>::GroupingKind() const {
  switch (config_.grouping_policy) {
    case GroupingPolicy::kFollowStored:
      return config_.tpbr_kind;
    case GroupingPolicy::kConservative:
      return TpbrKind::kConservative;
    case GroupingPolicy::kUpdateMinimum:
      return TpbrKind::kUpdateMinimum;
  }
  REXP_CHECK(false);
}

template <int kDims>
Tpbr<kDims> Tree<kDims>::DecisionBound(const Tpbr<kDims>& base,
                                       const Tpbr<kDims>& add, Time now,
                                       int parent_level) {
  Tpbr<kDims> pair[2] = {base, add};
  if (!config_.expire_entries || config_.choose_subtree_ignores_expiration) {
    return ComputeTpbr<kDims>(TpbrKind::kConservative, pair, now, 0.0,
                              nullptr);
  }
  return ComputeTpbr<kDims>(GroupingKind(), pair, now,
                            TpbrHorizonForLevel(parent_level), &rng_);
}

namespace {

// Upper integration bound for objective integrals involving rectangles
// that expire at `t_exp` (paper Section 4.2.1): min(H, t_exp - now),
// at least 0.
double MetricHorizon(double h, Time t_exp, Time now, bool use_expiration) {
  if (!use_expiration || !IsFiniteTime(t_exp)) return h;
  return std::clamp(t_exp - now, 0.0, h);
}

}  // namespace

template <int kDims>
int Tree<kDims>::ChooseSubtree(const Node<kDims>& node,
                               const Tpbr<kDims>& region, Time now) {
  REXP_CHECK(!node.entries.empty());
  std::vector<int> candidates;
  candidates.reserve(node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (EntryLive(node.entries[i], now)) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  if (candidates.empty()) {
    // No live children (transient); fall back to all.
    for (size_t i = 0; i < node.entries.size(); ++i) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  if (candidates.size() == 1) return candidates[0];

  const double h = horizon_.DecisionHorizon();
  const bool honor_exp =
      config_.expire_entries && !config_.choose_subtree_ignores_expiration;

  struct Scored {
    int index;
    double area_enlargement;
    double area;
    Tpbr<kDims> what_if;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (int i : candidates) {
    const Tpbr<kDims>& old_region = node.entries[i].region;
    Tpbr<kDims> what_if = DecisionBound(old_region, region, now, node.level);
    double t_cap =
        MetricHorizon(h, std::max(old_region.t_exp, what_if.t_exp), now,
                      honor_exp);
    double old_area = AreaIntegral(old_region, now, t_cap);
    double new_area = AreaIntegral(what_if, now, t_cap);
    scored.push_back(Scored{i, new_area - old_area, old_area, what_if});
  }

  auto area_better = [](const Scored& a, const Scored& b) {
    if (a.area_enlargement != b.area_enlargement) {
      return a.area_enlargement < b.area_enlargement;
    }
    return a.area < b.area;
  };

  // R*'s overlap-enlargement heuristic applies at the level just above the
  // leaves; restricted (as the R*-tree paper suggests) to the
  // kOverlapCandidates entries with the least area enlargement. The
  // R^exp-tree configuration disables this heuristic entirely, making
  // ChooseSubtree linear (paper Section 4.2.2).
  if (config_.use_overlap_enlargement && node.level == 1) {
    std::sort(scored.begin(), scored.end(), area_better);
    size_t top = std::min<size_t>(scored.size(), kOverlapCandidates);
    int best = -1;
    double best_overlap = 0, best_enlargement = 0;
    for (size_t k = 0; k < top; ++k) {
      const Scored& s = scored[k];
      double delta_overlap = 0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (static_cast<int>(j) == s.index) continue;
        const Tpbr<kDims>& other = node.entries[j].region;
        double t_cap = MetricHorizon(
            h, std::max(s.what_if.t_exp, other.t_exp), now, honor_exp);
        delta_overlap += OverlapIntegral(s.what_if, other, now, t_cap) -
                         OverlapIntegral(node.entries[s.index].region, other,
                                         now, t_cap);
      }
      if (best < 0 || delta_overlap < best_overlap ||
          (delta_overlap == best_overlap &&
           s.area_enlargement < best_enlargement)) {
        best = s.index;
        best_overlap = delta_overlap;
        best_enlargement = s.area_enlargement;
      }
    }
    return best;
  }

  const Scored* best = &scored[0];
  for (const Scored& s : scored) {
    if (area_better(s, *best)) best = &s;
  }
  return best->index;
}

template <int kDims>
std::vector<typename Tree<kDims>::PathStep> Tree<kDims>::ChoosePath(
    const Tpbr<kDims>& region, int target_level, Time now) {
  REXP_CHECK(root_ != kInvalidPageId);
  REXP_CHECK(target_level <= height_ - 1);
  std::vector<PathStep> path;
  path.push_back(PathStep{root_});
  Node<kDims> node = ReadNode(root_);
  while (node.level > target_level) {
    int idx = ChooseSubtree(node, region, now);
    ++op_stats_.choose_subtree_calls;
    if (tracer_ != nullptr) {
      tracer_->Emit("choose_subtree",
                    {{"level", static_cast<double>(node.level)},
                     {"entries", static_cast<double>(node.entries.size())},
                     {"chosen", static_cast<double>(idx)}});
    }
    PageId child = node.entries[idx].id;
    path.push_back(PathStep{child});
    node = ReadNode(child);
  }
  REXP_CHECK(node.level == target_level);
  return path;
}

// ---------------------------------------------------------------------------
// Split and forced reinsertion.

template <int kDims>
Node<kDims> Tree<kDims>::SplitNode(Node<kDims>* node, Time now) {
  const int total = static_cast<int>(node->entries.size());
  const int cap = codec_.Capacity(node->level);
  const int min_entries =
      std::max(2, static_cast<int>(cap * config_.min_fill_fraction));
  REXP_CHECK(total > cap);
  const uint64_t io_before = buffer_.stats().Total();
  if (tracer_ != nullptr) {
    tracer_->BeginSpan("split",
                       {{"level", static_cast<double>(node->level)}});
  }
  REXP_CHECK(total >= 2 * min_entries);

  const double h = horizon_.DecisionHorizon();
  const bool honor_exp =
      config_.expire_entries && !config_.choose_subtree_ignores_expiration;
  // Split *metrics* (margin/overlap/area integrals of candidate groups)
  // are evaluated on cheap O(n) bounds — by default update-minimum when
  // expiration times inform grouping, conservative otherwise (an explicit
  // grouping policy overrides this). The bounds actually stored for the
  // resulting nodes are recomputed with the configured strategy by the
  // propagation step, so only the distribution choice is affected;
  // evaluating every distribution with hull-based bounds would dominate
  // the whole insertion cost.
  TpbrKind metric_kind =
      honor_exp ? TpbrKind::kUpdateMinimum : TpbrKind::kConservative;
  if (honor_exp &&
      config_.grouping_policy == GroupingPolicy::kConservative) {
    metric_kind = TpbrKind::kConservative;
  }
  const double level_h = TpbrHorizonForLevel(node->level + 1);

  std::vector<Tpbr<kDims>> regions(total);
  auto group_bound = [&](int from, int to) {
    return ComputeTpbr<kDims>(
        metric_kind,
        std::span<const Tpbr<kDims>>(regions.data() + from, to - from), now,
        level_h, &rng_);
  };

  // Candidate orderings: by lower/upper bound position at `now` and by
  // lower/upper bound velocity, per axis (the TPR-tree's extension of the
  // R* split to time-parameterized entries).
  enum SortKey { kLoPos, kHiPos, kLoVel, kHiVel };
  auto make_sorted = [&](int axis, SortKey key) {
    std::vector<NodeEntry<kDims>> sorted = node->entries;
    std::sort(sorted.begin(), sorted.end(),
              [&](const NodeEntry<kDims>& a, const NodeEntry<kDims>& b) {
                switch (key) {
                  case kLoPos:
                    return a.region.LoAt(axis, now) < b.region.LoAt(axis, now);
                  case kHiPos:
                    return a.region.HiAt(axis, now) < b.region.HiAt(axis, now);
                  case kLoVel:
                    return a.region.vlo[axis] < b.region.vlo[axis];
                  case kHiVel:
                    return a.region.vhi[axis] < b.region.vhi[axis];
                }
                return false;
              });
    return sorted;
  };

  auto fill_regions = [&](const std::vector<NodeEntry<kDims>>& sorted) {
    for (int i = 0; i < total; ++i) regions[i] = sorted[i].region;
  };

  // Phase 1: choose the split axis by minimum total margin integral.
  int best_axis = 0;
  double best_axis_margin = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < kDims; ++axis) {
    double margin_sum = 0;
    for (SortKey key : {kLoPos, kHiPos, kLoVel, kHiVel}) {
      std::vector<NodeEntry<kDims>> sorted = make_sorted(axis, key);
      fill_regions(sorted);
      for (int k = min_entries; k <= total - min_entries; ++k) {
        Tpbr<kDims> b1 = group_bound(0, k);
        Tpbr<kDims> b2 = group_bound(k, total);
        double t1 = MetricHorizon(h, b1.t_exp, now, honor_exp);
        double t2 = MetricHorizon(h, b2.t_exp, now, honor_exp);
        margin_sum += MarginIntegral(b1, now, t1) + MarginIntegral(b2, now, t2);
      }
    }
    if (margin_sum < best_axis_margin) {
      best_axis_margin = margin_sum;
      best_axis = axis;
    }
  }

  // Phase 2: on the chosen axis, pick the distribution with the least
  // overlap integral (ties: least total area integral).
  std::vector<NodeEntry<kDims>> best_split;
  int best_k = -1;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (SortKey key : {kLoPos, kHiPos, kLoVel, kHiVel}) {
    std::vector<NodeEntry<kDims>> sorted = make_sorted(best_axis, key);
    fill_regions(sorted);
    for (int k = min_entries; k <= total - min_entries; ++k) {
      Tpbr<kDims> b1 = group_bound(0, k);
      Tpbr<kDims> b2 = group_bound(k, total);
      double t_pair = MetricHorizon(h, std::max(b1.t_exp, b2.t_exp), now,
                                    honor_exp);
      double overlap = OverlapIntegral(b1, b2, now, t_pair);
      double area = AreaIntegral(b1, now, MetricHorizon(h, b1.t_exp, now,
                                                        honor_exp)) +
                    AreaIntegral(b2, now, MetricHorizon(h, b2.t_exp, now,
                                                        honor_exp));
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_split = sorted;
        best_k = k;
      }
    }
  }
  REXP_CHECK(best_k > 0);

  Node<kDims> right;
  right.level = node->level;
  right.entries.assign(best_split.begin() + best_k, best_split.end());
  node->entries.assign(best_split.begin(), best_split.begin() + best_k);
  ++op_stats_.splits;
  if (tracer_ != nullptr) {
    tracer_->EndSpan(
        {{"axis", static_cast<double>(best_axis)},
         {"left", static_cast<double>(node->entries.size())},
         {"right", static_cast<double>(right.entries.size())},
         {"io", static_cast<double>(buffer_.stats().Total() - io_before)}});
  }
  return right;
}

template <int kDims>
void Tree<kDims>::RemoveForReinsert(Node<kDims>* node, Time now) {
  const int total = static_cast<int>(node->entries.size());
  int remove = static_cast<int>(config_.reinsert_fraction * total);
  remove = std::clamp(remove, 1, total - 2);

  Tpbr<kDims> bound = ComputeBound(*node, now);
  const double h = horizon_.DecisionHorizon();
  std::vector<std::pair<double, int>> by_distance;  // (distance, index)
  by_distance.reserve(total);
  for (int i = 0; i < total; ++i) {
    by_distance.emplace_back(
        CenterDistSqIntegral(node->entries[i].region, bound, now, h), i);
  }
  std::sort(by_distance.begin(), by_distance.end());

  // The `remove` farthest entries are queued for reinsertion, closest
  // first (R*'s "close reinsert").
  std::vector<NodeEntry<kDims>> kept;
  kept.reserve(total - remove);
  for (int i = 0; i < total - remove; ++i) {
    kept.push_back(node->entries[by_distance[i].second]);
  }
  for (int i = total - remove; i < total; ++i) {
    const NodeEntry<kDims>& removed = node->entries[by_distance[i].second];
    if (node->level == 0) dat_.ReleaseRef(removed.id);
    pending_.push_back(Pending{node->level, removed});
  }
  level_counts_[node->level] -= remove;
  node->entries = std::move(kept);
  ++op_stats_.forced_reinserts;
  op_stats_.reinserted_entries += remove;
  if (tracer_ != nullptr) {
    tracer_->Emit("forced_reinsert",
                  {{"level", static_cast<double>(node->level)},
                   {"removed", static_cast<double>(remove)}});
  }
}

// ---------------------------------------------------------------------------
// Structural propagation (the paper's CondenseTree / PropagateUp).

template <int kDims>
void Tree<kDims>::FixPath(const std::vector<PathStep>& path,
                          Node<kDims> node, Time now) {
  bool have_extra = false;
  NodeEntry<kDims> extra;
  bool child_removed = false;

  for (int i = static_cast<int>(path.size()) - 1; i >= 0; --i) {
    const PageId id = path[i].id;
    const bool is_root = (i == 0);
    const int cap = codec_.Capacity(node.level);
    const int min_entries =
        std::max(2, static_cast<int>(cap * config_.min_fill_fraction));

    child_removed = false;
    have_extra = false;
    // Where the node ends up: its own page normally, a fresh page under
    // copy-on-write (see StoreNode).
    PageId stored_id = kInvalidPageId;

    if (is_root && config_.crash_consistent) {
      // StoreNode is about to quarantine the root's current page, which
      // must not be pinned when that happens.
      REXP_CHECK_OK(PinRoot(kInvalidPageId));
    }

    if (static_cast<int>(node.entries.size()) > cap) {
      const uint32_t level_bit = 1u << node.level;
      if (!is_root && config_.reinsert_fraction > 0 &&
          !(reinserted_levels_ & level_bit)) {
        reinserted_levels_ |= level_bit;
        RemoveForReinsert(&node, now);
        stored_id = StoreNode(id, node);
      } else {
        Node<kDims> right = SplitNode(&node, now);
        stored_id = StoreNode(id, node);
        PageId right_id = AllocNode(right);
        if (is_root) {
          GrowRoot(stored_id, right_id, now);
          return;
        }
        have_extra = true;
        // Bound the new sibling as stored on its page (float-rounded), so
        // that parent bounds always cover the on-page child exactly.
        ReadNodeInto(right_id, &fix_scratch_);
        extra = NodeEntry<kDims>{ComputeBound(fix_scratch_, now), right_id};
      }
    } else if (!is_root &&
               static_cast<int>(node.entries.size()) < min_entries) {
      if (pending_.size() + node.entries.size() > config_.max_orphans) {
        // Orphan list is (almost) full: stop handling underfull nodes for
        // this operation (paper Section 4.3). The node stays underfull —
        // harmless for correctness — and a later modification fixes it.
        ++underfull_remnants_;
        stored_id = StoreNode(id, node);
      } else {
        // Underfull: orphan the live entries and dissolve the node (paper
        // step PU2). Orphaned leaf records leave the leaf level until
        // reinserted, so their DAT references drop here and come back in
        // InsertPending.
        if (node.level == 0) ReleaseLeafRefs(node);
        for (const NodeEntry<kDims>& e : node.entries) {
          pending_.push_back(Pending{node.level, e});
        }
        level_counts_[node.level] -= node.entries.size();
        op_stats_.orphaned_entries += node.entries.size();
        if (tracer_ != nullptr) {
          tracer_->Emit("dissolve",
                        {{"level", static_cast<double>(node.level)},
                         {"orphaned",
                          static_cast<double>(node.entries.size())}});
        }
        FreeNode(id);
        child_removed = true;
      }
    } else {
      stored_id = StoreNode(id, node);
    }

    if (is_root) {
      if (config_.crash_consistent) {
        root_ = stored_id;
        REXP_CHECK_OK(PinRoot(root_));
      }
      MaybeShrinkRoot(now);
      return;
    }

    Node<kDims> parent = ReadNode(path[i - 1].id);
    // Purging may not drop the entry for the child we are updating: its
    // recorded expiration predates this operation's changes.
    PurgeExpired(&parent, now, /*skip_id=*/id);
    int idx = parent.FindId(id);
    if (child_removed) {
      if (idx >= 0) {
        parent.entries.erase(parent.entries.begin() + idx);
        level_counts_[parent.level] -= 1;
      }
    } else {
      REXP_CHECK(idx >= 0);
      // Recompute the bound from the node as stored on its page: encoding
      // rounds entries outward, and the parent bound must cover the
      // on-page representation. Under copy-on-write the child also moved.
      ReadNodeInto(stored_id, &fix_scratch_);
      parent.entries[idx].region = ComputeBound(fix_scratch_, now);
      parent.entries[idx].id = stored_id;
    }
    if (have_extra) {
      parent.entries.push_back(extra);
      level_counts_[parent.level] += 1;
    }
    node = std::move(parent);
  }
}

template <int kDims>
void Tree<kDims>::GrowRoot(PageId left, PageId right, Time now) {
  Node<kDims> left_node = ReadNode(left);
  Node<kDims> right_node = ReadNode(right);
  Node<kDims> new_root;
  new_root.level = left_node.level + 1;
  REXP_CHECK(new_root.level < kMaxLevels);
  new_root.entries.push_back(
      NodeEntry<kDims>{ComputeBound(left_node, now), left});
  new_root.entries.push_back(
      NodeEntry<kDims>{ComputeBound(right_node, now), right});
  root_ = AllocNode(new_root);
  height_ = new_root.level + 1;
  level_counts_.resize(height_, 0);
  level_counts_[new_root.level] += 2;
  ++op_stats_.root_grows;
  if (tracer_ != nullptr) {
    tracer_->Emit("root_grow", {{"height", static_cast<double>(height_)}});
  }
  REXP_CHECK_OK(PinRoot(root_));
}

template <int kDims>
void Tree<kDims>::MaybeShrinkRoot(Time now) {
  (void)now;
  while (root_ != kInvalidPageId) {
    Node<kDims> root = ReadNode(root_);
    if (root.level == 0) return;  // Leaf roots may hold any count.
    if (root.entries.size() == 1) {
      // CT4: declare the only child the new root.
      PageId old_root = root_;
      PageId new_root = root.entries[0].id;
      level_counts_[root.level] -= 1;
      height_ = root.level;
      level_counts_.resize(height_);
      root_ = new_root;
      parent_of_.Erase(new_root);  // The root has no parent.
      ++op_stats_.root_shrinks;
      if (tracer_ != nullptr) {
        tracer_->Emit("root_shrink",
                      {{"height", static_cast<double>(height_)}});
      }
      REXP_CHECK_OK(PinRoot(root_));
      FreeNode(old_root);
      continue;
    }
    if (root.entries.empty()) {
      // Exotic case: every entry of the root expired or was orphaned.
      PageId old_root = root_;
      root_ = kInvalidPageId;
      height_ = 0;
      level_counts_.clear();
      ++op_stats_.root_shrinks;
      if (tracer_ != nullptr) {
        tracer_->Emit("root_shrink", {{"height", 0.0}});
      }
      REXP_CHECK_OK(PinRoot(kInvalidPageId));
      FreeNode(old_root);
      return;
    }
    return;
  }
}

template <int kDims>
void Tree<kDims>::EnsureHeightFor(int level, Time now) {
  if (root_ == kInvalidPageId) return;
  while (height_ - 1 < level) {
    Node<kDims> root = ReadNode(root_);
    Node<kDims> new_root;
    new_root.level = root.level + 1;
    REXP_CHECK(new_root.level < kMaxLevels);
    new_root.entries.push_back(
        NodeEntry<kDims>{ComputeBound(root, now), root_});
    root_ = AllocNode(new_root);
    height_ = new_root.level + 1;
    level_counts_.resize(height_, 0);
    level_counts_[new_root.level] += 1;
    REXP_CHECK_OK(PinRoot(root_));
  }
}

template <int kDims>
void Tree<kDims>::InsertPending(Pending pending, Time now) {
  // The entry is about to gain a physical leaf placement; the leaf write
  // below (AllocNode/StoreNode) pins its location.
  if (pending.level == 0) dat_.AddRef(pending.entry.id);
  if (root_ == kInvalidPageId) {
    // Empty tree: the entry becomes (the only entry of) a new root at its
    // own level (paper CT3.1).
    Node<kDims> root;
    root.level = pending.level;
    root.entries.push_back(pending.entry);
    root_ = AllocNode(root);
    height_ = pending.level + 1;
    level_counts_.assign(height_, 0);
    level_counts_[pending.level] = 1;
    REXP_CHECK_OK(PinRoot(root_));
    return;
  }
  EnsureHeightFor(pending.level, now);
  std::vector<PathStep> path =
      ChoosePath(pending.entry.region, pending.level, now);
  Node<kDims> node = ReadNode(path.back().id);
  PurgeExpired(&node, now);
  node.entries.push_back(pending.entry);
  level_counts_[pending.level] += 1;
  FixPath(path, std::move(node), now);
}

template <int kDims>
void Tree<kDims>::DrainPending(Time now) {
  // Highest level first (paper CT3), FIFO within a level (which realizes
  // R*'s close-first reinsertion order).
  while (!pending_.empty()) {
    size_t pick = 0;
    for (size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i].level > pending_[pick].level) pick = i;
    }
    Pending p = pending_[pick];
    pending_.erase(pending_.begin() + pick);
    InsertPending(std::move(p), now);
  }
}

// ---------------------------------------------------------------------------
// Public operations.

template <int kDims>
void Tree<kDims>::Insert(ObjectId oid, const Tpbr<kDims>& point, Time now) {
  const Tpbr<kDims> p = CanonicalRecord(point);
#ifndef NDEBUG
  for (int d = 0; d < kDims; ++d) {
    REXP_DCHECK(p.lo[d] == p.hi[d] && p.vlo[d] == p.vhi[d]);
  }
#endif
  sched::WriterMutexLock epoch(&epoch_mu_);
  reinserted_levels_ = 0;
  ++op_stats_.inserts;
  const uint64_t io_before = buffer_.stats().Total();
  obs::LatencyTimer timer(&op_stats_.insert_latency_us);
  if (tracer_ != nullptr) {
    tracer_->BeginSpan("insert",
                       {{"oid", static_cast<double>(oid)}, {"now", now}});
  }
  if (horizon_.RecordInsertion(
          now, level_counts_.empty() ? 0 : level_counts_[0])) {
    ++op_stats_.horizon_retunes;
    if (tracer_ != nullptr) {
      tracer_->Emit("horizon_retune", {{"now", now},
                                       {"ui", horizon_.ui()},
                                       {"w", horizon_.w()},
                                       {"h", horizon_.DecisionHorizon()}});
    }
  }
  InsertPending(Pending{0, NodeEntry<kDims>{p, oid}}, now);
  DrainPending(now);
  WriteBackSpanned();
  const uint64_t io = buffer_.stats().Total() - io_before;
  op_stats_.insert_io.Record(static_cast<double>(io));
  if (tracer_ != nullptr) {
    tracer_->EndSpan({{"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(obs::FlightOp::kInsert, oid,
                                     timer.ElapsedUs(), StatusCode::kOk, io);
  ParanoidVerify(now);
}

template <int kDims>
bool Tree<kDims>::DeleteRecurse(PageId id, int level, ObjectId oid,
                                const Tpbr<kDims>& point, Time now,
                                bool see_expired,
                                std::vector<PathStep>* path) {
  path->push_back(PathStep{id});
  if (delete_scratch_.size() <= static_cast<size_t>(level)) {
    delete_scratch_.resize(level + 1);
  }
  Node<kDims>& node = delete_scratch_[level];
  ReadNodeInto(id, &node);
  REXP_CHECK(node.level == level);
  // The record is guaranteed to lie inside every ancestor bound while it
  // is live; for an already-expired record (scheduled deletions arriving
  // slightly late) test containment at the last instant it was live.
  const Time t_test = (config_.expire_entries && point.t_exp < now)
                          ? static_cast<Time>(point.t_exp)
                          : now;
  if (node.IsLeaf()) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const NodeEntry<kDims>& e = node.entries[i];
      if (e.id != oid) continue;
      if (!see_expired && !EntryLive(e, now)) continue;
      bool match = e.region.t_exp == point.t_exp;
      for (int d = 0; match && d < kDims; ++d) {
        match = e.region.lo[d] == point.lo[d] &&
                e.region.vlo[d] == point.vlo[d];
      }
      if (!match) continue;
      dat_.ReleaseRef(e.id);
      node.entries.erase(node.entries.begin() + i);
      level_counts_[0] -= 1;
      PurgeExpired(&node, now);
      FixPath(*path, std::move(node), now);
      return true;
    }
  } else {
    for (const NodeEntry<kDims>& e : node.entries) {
      if (!see_expired && !EntryLive(e, now)) continue;
      bool contains = true;
      for (int d = 0; contains && d < kDims; ++d) {
        double pos = point.LoAt(d, t_test);
        contains = e.region.LoAt(d, t_test) <= pos &&
                   pos <= e.region.HiAt(d, t_test);
      }
      if (!contains) continue;
      if (DeleteRecurse(e.id, level - 1, oid, point, now, see_expired,
                        path)) {
        return true;
      }
    }
  }
  path->pop_back();
  return false;
}

template <int kDims>
bool Tree<kDims>::Delete(ObjectId oid, const Tpbr<kDims>& point, Time now,
                         bool see_expired) {
  sched::WriterMutexLock epoch(&epoch_mu_);
  if (root_ == kInvalidPageId) {
    ++op_stats_.deletes;
    ++op_stats_.delete_misses;
    return false;
  }
  reinserted_levels_ = 0;
  ++op_stats_.deletes;
  const uint64_t io_before = buffer_.stats().Total();
  obs::LatencyTimer timer(&op_stats_.delete_latency_us);
  if (tracer_ != nullptr) {
    tracer_->BeginSpan("delete",
                       {{"oid", static_cast<double>(oid)}, {"now", now}});
  }
  // Canonicalize the probe so it compares equal to what Insert stored even
  // when the caller kept the record in full double precision.
  const Tpbr<kDims> p = CanonicalRecord(point);
  // When the DAT pins the object's single physical copy the whole
  // operation resolves at that leaf — no overlap-guided descent.
  bool found;
  DatDelete direct = DeleteViaDat(oid, p, now, see_expired);
  if (direct == DatDelete::kUnknown) {
    path_scratch_.clear();
    found = DeleteRecurse(root_, height_ - 1, oid, p, now, see_expired,
                          &path_scratch_);
  } else {
    found = direct == DatDelete::kDeleted;
  }
  if (found) {
    DrainPending(now);
  } else {
    ++op_stats_.delete_misses;
  }
  WriteBackSpanned();
  const uint64_t io = buffer_.stats().Total() - io_before;
  op_stats_.delete_io.Record(static_cast<double>(io));
  if (tracer_ != nullptr) {
    tracer_->EndSpan({{"found", found ? 1.0 : 0.0},
                      {"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(
      obs::FlightOp::kDelete, oid, timer.ElapsedUs(),
      found ? StatusCode::kOk : StatusCode::kNotFound, io);
  ParanoidVerify(now);
  return found;
}

// ---------------------------------------------------------------------------
// Bottom-up updates (DESIGN.md §10).

namespace {

// Index of the leaf entry matching (oid, point) under Delete's predicate,
// or -1. Exact-match on the canonical record: a degenerate TPBR is fully
// determined by its reference position, lower velocity, and expiry.
template <int kDims>
int FindLeafMatch(const Node<kDims>& node, ObjectId oid,
                  const Tpbr<kDims>& point, Time now, bool see_expired,
                  bool expire_entries) {
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const NodeEntry<kDims>& e = node.entries[i];
    if (e.id != oid) continue;
    if (!see_expired && expire_entries && e.region.t_exp < now) continue;
    bool match = e.region.t_exp == point.t_exp;
    for (int d = 0; match && d < kDims; ++d) {
      match = e.region.lo[d] == point.lo[d] &&
              e.region.vlo[d] == point.vlo[d];
    }
    if (match) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

template <int kDims>
Status Tree<kDims>::RebuildDat() {
  dat_.Clear();
  parent_of_.Clear();
  if (root_ == kInvalidPageId) return Status::OK();
  REXP_RETURN_IF_ERROR(RebuildDatWalk(root_, height_ - 1));
  ++op_stats_.dat_rebuilds;
  return Status::OK();
}

template <int kDims>
Status Tree<kDims>::RebuildDatWalk(PageId id, int level) {
  Node<kDims> node;
  {
    REXP_ASSIGN_OR_RETURN(PageGuard guard, buffer_.Fetch(id));
    codec_.Decode(*guard, &node);
  }
  if (node.level != level) {
    return Status::Corruption(
        "page " + std::to_string(id) + ": node level " +
        std::to_string(node.level) + ", expected " + std::to_string(level));
  }
  if (node.IsLeaf()) {
    for (const NodeEntry<kDims>& e : node.entries) {
      dat_.AddRef(e.id);
      dat_.NoteLeaf(e.id, id);
    }
  } else {
    for (const NodeEntry<kDims>& e : node.entries) {
      parent_of_.Put(e.id, id);
      REXP_RETURN_IF_ERROR(RebuildDatWalk(e.id, level - 1));
    }
  }
  return Status::OK();
}

template <int kDims>
bool Tree<kDims>::BuildPathFromDat(PageId leaf, std::vector<PathStep>* path) {
  path->clear();
  PageId id = leaf;
  int steps = 0;
  while (id != root_) {
    path->push_back(PathStep{id});
    PageId* parent = parent_of_.Find(id);
    if (parent == nullptr || ++steps >= height_) return false;
    id = *parent;
  }
  path->push_back(PathStep{root_});
  std::reverse(path->begin(), path->end());
  return static_cast<int>(path->size()) == height_;
}

template <int kDims>
bool Tree<kDims>::RecordCoveredByBound(const Tpbr<kDims>& bound,
                                       const Tpbr<kDims>& rec,
                                       Time now) const {
  if (config_.expire_entries && IsFiniteTime(rec.t_exp)) {
    if (rec.t_exp < now) return false;  // Already expired: not admissible.
    // Both sides are linear in t, so endpoint containment over the
    // record's remaining lifetime is exact containment.
    return bound.Bounds(rec, now, rec.t_exp, 0.0);
  }
  // Unbounded lifetime (TPR mode): velocity nesting plus position
  // containment now imply containment at every t >= now.
  for (int d = 0; d < kDims; ++d) {
    if (bound.vlo[d] > rec.vlo[d] || rec.vhi[d] > bound.vhi[d]) return false;
    if (bound.LoAt(d, now) > rec.LoAt(d, now) ||
        rec.HiAt(d, now) > bound.HiAt(d, now)) {
      return false;
    }
  }
  return true;
}

template <int kDims>
typename Tree<kDims>::DatDelete Tree<kDims>::DeleteViaDat(
    ObjectId oid, const Tpbr<kDims>& point, Time now, bool see_expired) {
  const DatEntry* de = dat_.Find(oid);
  if (de == nullptr) {
    // The DAT tracks every physical copy; no entry means no copy anywhere
    // in the tree, so a descent could not succeed either.
    ++op_stats_.delete_bottom_up;
    return DatDelete::kAbsent;
  }
  if (de->count != 1 || de->leaf == kInvalidPageId) {
    return DatDelete::kUnknown;
  }
  const PageId leaf = de->leaf;
  if (!BuildPathFromDat(leaf, &path_scratch_)) return DatDelete::kUnknown;
  Node<kDims>& node = update_scratch_;
  ReadNodeInto(leaf, &node);
  const int match = FindLeafMatch(node, oid, point, now, see_expired,
                                  config_.expire_entries);
  ++op_stats_.delete_bottom_up;
  if (match < 0) {
    // The object's single physical copy does not match the probe.
    return DatDelete::kAbsent;
  }
  dat_.ReleaseRef(oid);
  node.entries.erase(node.entries.begin() + match);
  level_counts_[0] -= 1;
  PurgeExpired(&node, now);
  FixPath(path_scratch_, std::move(node), now);
  return DatDelete::kDeleted;
}

template <int kDims>
bool Tree<kDims>::UpdateLocked(ObjectId oid, const Tpbr<kDims>& old_record,
                               const Tpbr<kDims>& new_record, Time now) {
  ++op_stats_.updates;
  if (horizon_.RecordInsertion(
          now, level_counts_.empty() ? 0 : level_counts_[0])) {
    ++op_stats_.horizon_retunes;
    if (tracer_ != nullptr) {
      tracer_->Emit("horizon_retune", {{"now", now},
                                       {"ui", horizon_.ui()},
                                       {"w", horizon_.w()},
                                       {"h", horizon_.DecisionHorizon()}});
    }
  }

  // Fast path: the DAT pins the object's single physical copy to a leaf.
  const DatEntry* de =
      root_ != kInvalidPageId ? dat_.Find(oid) : nullptr;
  const PageId leaf =
      (de != nullptr && de->count == 1) ? de->leaf : kInvalidPageId;
  if (leaf != kInvalidPageId) {
    ++op_stats_.dat_hits;
    Node<kDims>& node = update_scratch_;
    ReadNodeInto(leaf, &node);
    const int match = FindLeafMatch(node, oid, old_record, now,
                                    /*see_expired=*/false,
                                    config_.expire_entries);
    if (match >= 0) {
      bool covered = false;
      bool expiry_ok = false;
      if (leaf == root_) {
        // A leaf root has no parent-facing bound to respect.
        covered = expiry_ok = true;
      } else {
        PageId* parent = parent_of_.Find(leaf);
        if (parent != nullptr) {
          ReadNodeInto(*parent, &fix_scratch_);
          const int pidx = fix_scratch_.FindId(leaf);
          if (pidx >= 0) {
            const Tpbr<kDims>& bound = fix_scratch_.entries[pidx].region;
            covered = RecordCoveredByBound(bound, new_record, now);
            // Queries prune internal entries by effective expiry, so a
            // pure in-place write additionally needs the parent entry to
            // outlive the new record.
            expiry_ok = !config_.expire_entries ||
                        bound.EffectiveExpiry(0) >= new_record.t_exp;
          }
        }
      }
      if (covered && expiry_ok && !config_.crash_consistent) {
        // Tier 1: a single leaf write — no purge, no parent touch, zero
        // descents. Ancestors stay sound: the parent entry covers the new
        // record over its whole remaining lifetime, and every ancestor
        // covers the parent entry up to its recorded expiry, which the
        // admission rule keeps at or above the new record's.
        node.entries[match].region = new_record;
        WriteNode(leaf, node);
        ++op_stats_.update_fast;
        return true;
      }
      if (covered && BuildPathFromDat(leaf, &path_scratch_)) {
        // Tier 2: replace in the leaf, then let FixPath recompute every
        // ancestor bound/expiry up the parent chain — still no
        // ChooseSubtree descent. This is the usual case when the new
        // record outlives the recorded parent expiry, and the only
        // admissible bottom-up form under copy-on-write (the leaf's page
        // id changes on every store).
        node.entries[match].region = new_record;
        PurgeExpired(&node, now);
        FixPath(path_scratch_, std::move(node), now);
        DrainPending(now);
        ++op_stats_.update_fast;
        ++op_stats_.update_fast_propagations;
        return true;
      }
    }
  } else {
    ++op_stats_.dat_misses;
  }

  // Fallback: localized delete (bottom-up when the DAT can resolve it,
  // overlap-guided descent otherwise) followed by a regular insert.
  ++op_stats_.update_fallback;
  bool found = false;
  if (root_ != kInvalidPageId) {
    DatDelete direct = DeleteViaDat(oid, old_record, now,
                                    /*see_expired=*/false);
    if (direct == DatDelete::kUnknown) {
      path_scratch_.clear();
      found = DeleteRecurse(root_, height_ - 1, oid, old_record, now,
                            /*see_expired=*/false, &path_scratch_);
    } else {
      found = direct == DatDelete::kDeleted;
    }
    if (found) DrainPending(now);
  }
  InsertPending(Pending{0, NodeEntry<kDims>{new_record, oid}}, now);
  DrainPending(now);
  return found;
}

template <int kDims>
bool Tree<kDims>::Update(ObjectId oid, const Tpbr<kDims>& old_record,
                         const Tpbr<kDims>& new_record, Time now) {
  sched::WriterMutexLock epoch(&epoch_mu_);
  reinserted_levels_ = 0;
  const uint64_t io_before = buffer_.stats().Total();
  const uint64_t fast_before =
      op_stats_.update_fast.load(std::memory_order_relaxed);
  obs::LatencyTimer timer(&op_stats_.update_latency_us);
  if (tracer_ != nullptr) {
    tracer_->BeginSpan("update",
                       {{"oid", static_cast<double>(oid)}, {"now", now}});
  }
  bool found = UpdateLocked(oid, CanonicalRecord(old_record),
                            CanonicalRecord(new_record), now);
  WriteBackSpanned();
  const uint64_t io = buffer_.stats().Total() - io_before;
  op_stats_.update_io.Record(static_cast<double>(io));
  if (tracer_ != nullptr) {
    const bool fast =
        op_stats_.update_fast.load(std::memory_order_relaxed) != fast_before;
    tracer_->EndSpan({{"found", found ? 1.0 : 0.0},
                      {"fast", fast ? 1.0 : 0.0},
                      {"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(
      obs::FlightOp::kUpdate, oid, timer.ElapsedUs(),
      found ? StatusCode::kOk : StatusCode::kNotFound, io);
  ParanoidVerify(now);
  return found;
}

template <int kDims>
std::vector<bool> Tree<kDims>::GroupUpdate(
    const std::vector<UpdateRequest>& requests, Time now) {
  std::vector<bool> results(requests.size(), false);
  if (requests.empty()) return results;
  sched::WriterMutexLock epoch(&epoch_mu_);
  ++op_stats_.group_update_batches;
  const uint64_t io_before = buffer_.stats().Total();
  obs::LatencyTimer timer(&op_stats_.update_latency_us);
  if (tracer_ != nullptr) {
    tracer_->BeginSpan(
        "group_update",
        {{"batch", static_cast<double>(requests.size())}, {"now", now}});
  }

  std::vector<UpdateRequest> reqs = requests;
  for (UpdateRequest& r : reqs) {
    r.old_record = CanonicalRecord(r.old_record);
    r.new_record = CanonicalRecord(r.new_record);
  }

  // Order the batch by DAT-pinned target leaf — stable, so requests for
  // the same object keep their batch order — and coalesce same-leaf
  // updates into one read-modify-write.
  std::vector<std::pair<PageId, size_t>> order;
  order.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const DatEntry* de =
        root_ != kInvalidPageId ? dat_.Find(reqs[i].oid) : nullptr;
    const PageId leaf =
        (de != nullptr && de->count == 1) ? de->leaf : kInvalidPageId;
    order.emplace_back(leaf, i);
  }
  std::stable_sort(
      order.begin(), order.end(),
      [](const std::pair<PageId, size_t>& a,
         const std::pair<PageId, size_t>& b) { return a.first < b.first; });

  std::vector<char> done(reqs.size(), 0);
  // Pass 1: per pinned leaf, apply every tier-1-admissible replacement to
  // one in-memory copy and write the page once. Copy-on-write mode
  // relocates the leaf on every store (invalidating the grouping), so it
  // takes the singles pass only.
  if (!config_.crash_consistent) {
    size_t g = 0;
    while (g < order.size()) {
      const PageId leaf = order[g].first;
      size_t g_end = g;
      while (g_end < order.size() && order[g_end].first == leaf) ++g_end;
      if (leaf == kInvalidPageId) {
        g = g_end;
        continue;
      }
      // The leaf's parent-facing bound gates every admission in this
      // group; read it once.
      bool have_bound = leaf == root_;
      Tpbr<kDims> bound;
      if (leaf != root_) {
        PageId* parent = parent_of_.Find(leaf);
        if (parent != nullptr) {
          ReadNodeInto(*parent, &fix_scratch_);
          const int pidx = fix_scratch_.FindId(leaf);
          if (pidx >= 0) {
            have_bound = true;
            bound = fix_scratch_.entries[pidx].region;
          }
        }
        if (!have_bound) {
          g = g_end;  // Broken parent chain: singles pass.
          continue;
        }
      }
      Node<kDims>& node = update_scratch_;
      ReadNodeInto(leaf, &node);
      bool dirty = false;
      for (size_t k = g; k < g_end; ++k) {
        const UpdateRequest& r = reqs[order[k].second];
        const int match = FindLeafMatch(node, r.oid, r.old_record, now,
                                        /*see_expired=*/false,
                                        config_.expire_entries);
        if (match < 0) continue;
        const bool admit =
            leaf == root_ ||
            (RecordCoveredByBound(bound, r.new_record, now) &&
             (!config_.expire_entries ||
              bound.EffectiveExpiry(0) >= r.new_record.t_exp));
        if (!admit) continue;
        node.entries[match].region = r.new_record;
        dirty = true;
        done[order[k].second] = 1;
        results[order[k].second] = true;
        ++op_stats_.updates;
        ++op_stats_.update_fast;
        ++op_stats_.dat_hits;
        if (horizon_.RecordInsertion(
                now, level_counts_.empty() ? 0 : level_counts_[0])) {
          ++op_stats_.horizon_retunes;
        }
      }
      if (dirty) WriteNode(leaf, node);
      g = g_end;
    }
  }

  // Pass 2: the rest through the single-update path, in batch order.
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (done[i] != 0) continue;
    reinserted_levels_ = 0;
    results[i] =
        UpdateLocked(reqs[i].oid, reqs[i].old_record, reqs[i].new_record,
                     now);
  }

  WriteBackSpanned();
  const uint64_t io = buffer_.stats().Total() - io_before;
  op_stats_.update_io.Record(static_cast<double>(io));
  if (tracer_ != nullptr) {
    tracer_->EndSpan({{"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(obs::FlightOp::kGroupUpdate,
                                     requests.size(), timer.ElapsedUs(),
                                     StatusCode::kOk, io);
  ParanoidVerify(now);
  return results;
}

template <int kDims>
std::vector<verify::DatSnapshotEntry> Tree<kDims>::DatSnapshotForTest()
    const {
  sched::ReaderMutexLock epoch(&epoch_mu_);
  std::vector<verify::DatSnapshotEntry> out;
  out.reserve(dat_.size());
  dat_.ForEach([&out](uint32_t oid, const DatEntry& e) {
    out.push_back(verify::DatSnapshotEntry{oid, e.leaf, e.count});
  });
  return out;
}

template <int kDims>
void Tree<kDims>::Search(const Query<kDims>& query,
                         std::vector<ObjectId>* out) {
  sched::ReaderMutexLock epoch(&epoch_mu_);
  ++op_stats_.searches;
  if (root_ == kInvalidPageId) return;
  const uint64_t io_before = buffer_.stats().Total();
  const size_t results_before = out->size();
  obs::LatencyTimer timer(&op_stats_.search_latency_us);
  uint64_t visited = 0;
  // Reader-side scratch: Search runs under a shared epoch from many
  // threads at once, so the reused stack and node buffers are per-thread.
  // After the first few queries their capacity plateaus and the steady
  // state performs no heap allocation (guarded in bench/micro_tree_ops).
  static thread_local std::vector<PageId> stack;
  static thread_local Node<kDims> node;
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    ReadNodeInto(id, &node);
    ++visited;
    for (const NodeEntry<kDims>& e : node.entries) {
      Time expiry = kNeverExpires;
      if (config_.expire_entries) {
        expiry = node.IsLeaf() ? e.region.t_exp
                               : e.region.EffectiveExpiry(0);
      }
      if (!Intersects(e.region, query, expiry)) continue;
      if (node.IsLeaf()) {
        out->push_back(e.id);
      } else {
        stack.push_back(e.id);
      }
    }
  }
  op_stats_.nodes_visited_search += visited;
  const uint64_t io = buffer_.stats().Total() - io_before;
  op_stats_.search_io.Record(static_cast<double>(io));
  // A flat summary event, not a span: searches run under shared epochs
  // from many threads at once, and interleaved span groups would be
  // unattributable. The exclusive-writer operations carry the spans.
  if (tracer_ != nullptr) {
    tracer_->Emit(
        "search",
        {{"visited", static_cast<double>(visited)},
         {"results", static_cast<double>(out->size() - results_before)},
         {"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(obs::FlightOp::kSearch,
                                     out->size() - results_before,
                                     timer.ElapsedUs(), StatusCode::kOk, io);
}

template <int kDims>
std::vector<std::vector<ObjectId>> Tree<kDims>::ParallelSearch(
    const std::vector<Query<kDims>>& queries, int num_threads) {
  std::vector<std::vector<ObjectId>> results(queries.size());
  if (queries.empty()) return results;
  num_threads = std::clamp<int>(num_threads, 1,
                                static_cast<int>(queries.size()));
  if (num_threads == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      Search(queries[i], &results[i]);
    }
    return results;
  }
  sched::ThreadPool pool(num_threads);
  return ParallelSearch(queries, &pool);
}

template <int kDims>
std::vector<std::vector<ObjectId>> Tree<kDims>::ParallelSearch(
    const std::vector<Query<kDims>>& queries, sched::ThreadPool* pool) {
  std::vector<std::vector<ObjectId>> results(queries.size());
  if (queries.empty()) return results;
  const int workers =
      pool == nullptr
          ? 1
          : std::clamp<int>(pool->num_threads(), 1,
                            static_cast<int>(queries.size()));
  if (workers == 1 || pool == nullptr) {
    for (size_t i = 0; i < queries.size(); ++i) {
      Search(queries[i], &results[i]);
    }
    return results;
  }
  // Workers pull query indices from a shared cursor (dynamic scheduling:
  // query costs vary, so static striping would idle the fast workers) and
  // write disjoint result slots; each Search takes its own shared epoch.
  //
  // The pool may be shared with other concurrent fan-outs, so completion
  // is tracked by a per-call latch rather than ThreadPool::Wait() (which
  // waits for ALL submitted tasks, including other callers').
  std::atomic<size_t> next{0};
  sched::Mutex done_mu(sched::LockRank::kLeaf, "parallel_search_latch");
  sched::CondVar done_cv;
  int pending = workers;
  for (int t = 0; t < workers; ++t) {
    pool->Submit([this, &queries, &results, &next, &done_mu, &done_cv,
                  &pending] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= queries.size()) break;
        Search(queries[i], &results[i]);
      }
      sched::MutexLock lk(&done_mu);
      if (--pending == 0) done_cv.NotifyAll();
    });
  }
  sched::MutexLock lk(&done_mu);
  done_cv.Wait(done_mu, [&pending] { return pending == 0; });
  return results;
}

// ---------------------------------------------------------------------------
// Bulk loading (sort-tile-recursive).

namespace {

// Splits `n` items into `pieces` nearly equal chunks; returns the start
// index of chunk `i`.
inline size_t ChunkStart(size_t n, size_t pieces, size_t i) {
  return n * i / pieces;
}

// Recursively orders items[begin, end) so that consecutive groups of
// (end-begin)/num_nodes items form spatial tiles: sort by the center
// coordinate of dimension `dim` at time `now`, carve into slabs, recurse
// on the remaining dimensions within each slab.
template <int kDims>
void StrOrder(std::vector<NodeEntry<kDims>>* items, size_t begin, size_t end,
              int dim, size_t num_nodes, Time now) {
  if (num_nodes <= 1 || end - begin <= 1) return;
  std::sort(items->begin() + begin, items->begin() + end,
            [dim, now](const NodeEntry<kDims>& a, const NodeEntry<kDims>& b) {
              double ca = a.region.LoAt(dim, now) + a.region.HiAt(dim, now);
              double cb = b.region.LoAt(dim, now) + b.region.HiAt(dim, now);
              return ca < cb;
            });
  if (dim == kDims - 1) return;  // Final dimension: sequential chunks.
  // Number of slabs along this dimension: the (kDims-dim)-th root of the
  // node count.
  double exponent = 1.0 / (kDims - dim);
  size_t slabs = static_cast<size_t>(
      std::ceil(std::pow(static_cast<double>(num_nodes), exponent)));
  slabs = std::clamp<size_t>(slabs, 1, num_nodes);
  size_t n = end - begin;
  for (size_t s = 0; s < slabs; ++s) {
    size_t node_lo = ChunkStart(num_nodes, slabs, s);
    size_t node_hi = ChunkStart(num_nodes, slabs, s + 1);
    if (node_hi == node_lo) continue;
    size_t item_lo = begin + ChunkStart(n, num_nodes, node_lo);
    size_t item_hi = begin + ChunkStart(n, num_nodes, node_hi);
    StrOrder(items, item_lo, item_hi, dim + 1, node_hi - node_lo, now);
  }
}

}  // namespace

template <int kDims>
std::vector<NodeEntry<kDims>> Tree<kDims>::PackLevel(
    std::vector<NodeEntry<kDims>> items, int level, Time now, double fill) {
  const int cap = codec_.Capacity(level);
  const int min_entries =
      std::max(2, static_cast<int>(cap * config_.min_fill_fraction));
  size_t target = std::max<size_t>(
      min_entries, static_cast<size_t>(cap * fill));
  size_t num_nodes = (items.size() + target - 1) / target;
  // Keep every node at or above the minimum fill (merging the tail into
  // fewer nodes if needed); sizes stay within capacity because fill and
  // the minimum are both at most cap.
  while (num_nodes > 1 &&
         items.size() / num_nodes < static_cast<size_t>(min_entries)) {
    --num_nodes;
  }
  REXP_CHECK(num_nodes >= 1);
  REXP_CHECK(items.size() / num_nodes <= static_cast<size_t>(cap));

  StrOrder<kDims>(&items, 0, items.size(), 0, num_nodes, now);

  if (level == 0) {
    // Reference each record before its node is written so the write hook
    // can pin single-copy objects to their leaf.
    for (const NodeEntry<kDims>& item : items) dat_.AddRef(item.id);
  }

  std::vector<NodeEntry<kDims>> parents;
  parents.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t lo = ChunkStart(items.size(), num_nodes, i);
    size_t hi = ChunkStart(items.size(), num_nodes, i + 1);
    Node<kDims> node;
    node.level = level;
    node.entries.assign(items.begin() + lo, items.begin() + hi);
    REXP_CHECK(static_cast<int>(node.entries.size()) <= cap);
    PageId id = AllocNode(node);
    level_counts_[level] += node.entries.size();
    // Bound the node as stored on its page (matching the insert path).
    parents.push_back(NodeEntry<kDims>{ComputeBound(ReadNode(id), now), id});
  }
  return parents;
}

template <int kDims>
void Tree<kDims>::BulkLoad(std::vector<BulkRecord> records, Time now,
                           double fill) {
  sched::WriterMutexLock epoch(&epoch_mu_);
  REXP_CHECK(root_ == kInvalidPageId && height_ == 0);
  REXP_CHECK(fill > config_.min_fill_fraction && fill <= 1.0);
  if (records.empty()) return;
  const uint64_t io_before = buffer_.stats().Total();
  if (tracer_ != nullptr) {
    tracer_->BeginSpan(
        "bulk_load",
        {{"records", static_cast<double>(records.size())}, {"now", now}});
  }

  std::vector<NodeEntry<kDims>> items;
  items.reserve(records.size());
  for (const BulkRecord& r : records) {
    items.push_back(NodeEntry<kDims>{CanonicalRecord(r.point), r.oid});
  }
  level_counts_.assign(1, 0);
  int level = 0;
  for (;;) {
    items = PackLevel(std::move(items), level, now, fill);
    if (items.size() == 1) break;
    ++level;
    REXP_CHECK(level < kMaxLevels);
    level_counts_.resize(level + 1, 0);
  }
  root_ = items[0].id;
  height_ = level + 1;
  REXP_CHECK_OK(PinRoot(root_));
  REXP_CHECK_OK(CommitLocked());
  const uint64_t io = buffer_.stats().Total() - io_before;
  if (tracer_ != nullptr) {
    tracer_->EndSpan({{"height", static_cast<double>(height_)},
                      {"io", static_cast<double>(io)}});
  }
  obs::GlobalFlightRecorder().Record(obs::FlightOp::kBulkLoad,
                                     level_counts_[0], 0, StatusCode::kOk,
                                     io);
  ParanoidVerify(now);
}

namespace {

// Squared distance from `point` to `region` evaluated at time t (zero if
// the point lies inside).
template <int kDims>
double MinDistSqAt(const Vec<kDims>& point, const Tpbr<kDims>& region,
                   Time t) {
  double d2 = 0;
  for (int d = 0; d < kDims; ++d) {
    double lo = region.LoAt(d, t);
    double hi = region.HiAt(d, t);
    double delta = 0;
    if (point[d] < lo) {
      delta = lo - point[d];
    } else if (point[d] > hi) {
      delta = point[d] - hi;
    }
    d2 += delta * delta;
  }
  return d2;
}

}  // namespace

template <int kDims>
void Tree<kDims>::NearestNeighbors(const Vec<kDims>& point, Time t, int k,
                                   std::vector<ObjectId>* out) {
  std::vector<NnResult> results;
  NearestNeighbors(point, t, k, &results);
  out->clear();
  out->reserve(results.size());
  for (const NnResult& r : results) out->push_back(r.oid);
}

template <int kDims>
void Tree<kDims>::NearestNeighbors(const Vec<kDims>& point, Time t, int k,
                                   std::vector<NnResult>* out) {
  sched::ReaderMutexLock epoch(&epoch_mu_);
  ++op_stats_.nn_searches;
  out->clear();
  if (root_ == kInvalidPageId || k <= 0) return;
  const uint64_t io_before = buffer_.stats().Total();
  uint64_t visited = 0;

  // Best-first search (Hjaltason & Samet): a min-heap of pending nodes
  // and leaf objects keyed by their minimum distance at time t; ties
  // broken by object id for a deterministic answer.
  struct Item {
    double dist;
    bool is_object;
    uint32_t id;  // Page id or object id.
    int level;

    bool operator>(const Item& other) const {
      if (dist != other.dist) return dist > other.dist;
      if (is_object != other.is_object) return is_object && !other.is_object;
      return id > other.id;
    }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push(Item{0.0, false, root_, height_ - 1});
  static thread_local Node<kDims> node;

  while (!heap.empty() && static_cast<int>(out->size()) < k) {
    Item item = heap.top();
    heap.pop();
    if (item.is_object) {
      out->push_back(NnResult{item.id, item.dist});
      continue;
    }
    ReadNodeInto(item.id, &node);
    ++visited;
    for (const NodeEntry<kDims>& e : node.entries) {
      // Only entries valid at time t participate.
      if (config_.expire_entries) {
        Time expiry = node.IsLeaf() ? e.region.t_exp
                                    : e.region.EffectiveExpiry(0);
        if (expiry < t) continue;
      }
      double dist = MinDistSqAt(point, e.region, t);
      heap.push(Item{dist, node.IsLeaf(), e.id, node.level - 1});
    }
  }
  op_stats_.nodes_visited_search += visited;
  if (tracer_ != nullptr) {
    tracer_->Emit("nn_search", {{"k", static_cast<double>(k)},
                                {"visited", static_cast<double>(visited)},
                                {"results",
                                 static_cast<double>(out->size())}});
  }
  obs::GlobalFlightRecorder().Record(obs::FlightOp::kNn, out->size(), 0,
                                     StatusCode::kOk,
                                     buffer_.stats().Total() - io_before);
}

// ---------------------------------------------------------------------------
// Introspection.

template <int kDims>
void Tree<kDims>::RegisterMetrics(obs::MetricsRegistry* registry,
                                  const std::string& prefix) const {
  // All bindings of this call share one owner so that destroying the
  // tree (or re-registering) removes them atomically. The previous
  // registration, if any, is dropped first: one live registration per
  // tree keeps names from colliding with themselves.
  metrics_registration_.Reset();
  const obs::OwnerId owner = registry->NewOwner();

  // Buffer-pool accounting (the paper's I/O metric plus pool behavior).
  const IoStats& io = buffer_.stats();
  registry->AddCounter(prefix + "buffer.reads", &io.reads, owner);
  registry->AddCounter(prefix + "buffer.writes", &io.writes, owner);
  registry->AddCounter(prefix + "buffer.hits", &io.hits, owner);
  registry->AddCounter(prefix + "buffer.misses", &io.misses, owner);
  registry->AddCounter(prefix + "buffer.evictions_clean",
                       &io.evictions_clean, owner);
  registry->AddCounter(prefix + "buffer.evictions_dirty",
                       &io.evictions_dirty, owner);
  registry->AddCounter(prefix + "buffer.write_backs", &io.write_backs,
                       owner);
  registry->AddCounter(prefix + "buffer.pins", &io.pins, owner);
  registry->AddCounter(prefix + "buffer.unpins", &io.unpins, owner);
  registry->AddCounter(prefix + "buffer.flush_errors", &io.flush_errors,
                       owner);
  registry->AddGauge(prefix + "buffer.hit_rate",
                     [&io] { return io.HitRate(); }, owner);
  registry->AddGauge(prefix + "buffer.pinned_frames", [this] {
    return static_cast<double>(buffer_.PinnedFrames());
  }, owner);
  registry->AddGauge(prefix + "buffer.heat_max_accesses", [this] {
    auto heat = buffer_.Heatmap(1);
    return heat.empty() ? 0.0 : static_cast<double>(heat[0].accesses);
  }, owner);

  // Device-level transfer and integrity counters.
  const DeviceStats& dev = file_->device_stats();
  registry->AddCounter(prefix + "device.frame_reads", &dev.frame_reads,
                       owner);
  registry->AddCounter(prefix + "device.frame_writes", &dev.frame_writes,
                       owner);
  registry->AddCounter(prefix + "device.read_errors", &dev.read_errors,
                       owner);
  registry->AddCounter(prefix + "device.write_errors", &dev.write_errors,
                       owner);
  registry->AddCounter(prefix + "device.checksum_failures",
                       &dev.checksum_failures, owner);
  registry->AddCounter(prefix + "device.read_retries", &dev.read_retries,
                       owner);
  registry->AddCounter(prefix + "device.write_retries", &dev.write_retries,
                       owner);
  registry->AddCounter(prefix + "device.read_giveups", &dev.read_giveups,
                       owner);
  registry->AddCounter(prefix + "device.write_giveups", &dev.write_giveups,
                       owner);
  registry->AddHistogram(prefix + "device.read_latency_us",
                         &dev.read_latency_us, owner);
  registry->AddHistogram(prefix + "device.write_latency_us",
                         &dev.write_latency_us, owner);

  // Tree operation counters.
  const TreeOpStats& ops = op_stats_;
  registry->AddCounter(prefix + "ops.inserts", &ops.inserts, owner);
  registry->AddCounter(prefix + "ops.deletes", &ops.deletes, owner);
  registry->AddCounter(prefix + "ops.delete_misses", &ops.delete_misses,
                       owner);
  registry->AddCounter(prefix + "ops.searches", &ops.searches, owner);
  registry->AddCounter(prefix + "ops.nn_searches", &ops.nn_searches, owner);
  registry->AddCounter(prefix + "ops.updates", &ops.updates, owner);
  registry->AddCounter(prefix + "ops.update_fast", &ops.update_fast, owner);
  registry->AddCounter(prefix + "ops.update_fast_propagations",
                       &ops.update_fast_propagations, owner);
  registry->AddCounter(prefix + "ops.update_fallback", &ops.update_fallback,
                       owner);
  registry->AddCounter(prefix + "ops.group_update_batches",
                       &ops.group_update_batches, owner);
  registry->AddCounter(prefix + "ops.dat_hits", &ops.dat_hits, owner);
  registry->AddCounter(prefix + "ops.dat_misses", &ops.dat_misses, owner);
  registry->AddCounter(prefix + "ops.dat_rebuilds", &ops.dat_rebuilds,
                       owner);
  registry->AddCounter(prefix + "ops.delete_bottom_up",
                       &ops.delete_bottom_up, owner);
  registry->AddCounter(prefix + "ops.choose_subtree_calls",
                       &ops.choose_subtree_calls, owner);
  registry->AddCounter(prefix + "ops.splits", &ops.splits, owner);
  registry->AddCounter(prefix + "ops.forced_reinserts",
                       &ops.forced_reinserts, owner);
  registry->AddCounter(prefix + "ops.reinserted_entries",
                       &ops.reinserted_entries, owner);
  registry->AddCounter(prefix + "ops.orphaned_entries",
                       &ops.orphaned_entries, owner);
  registry->AddCounter(prefix + "ops.purged_entries", &ops.purged_entries,
                       owner);
  registry->AddCounter(prefix + "ops.purged_subtrees",
                       &ops.purged_subtrees, owner);
  registry->AddCounter(prefix + "ops.nodes_visited_search",
                       &ops.nodes_visited_search, owner);
  registry->AddCounter(prefix + "ops.tpbr_recomputes",
                       &ops.tpbr_recomputes, owner);
  registry->AddCounter(prefix + "ops.horizon_retunes",
                       &ops.horizon_retunes, owner);
  registry->AddCounter(prefix + "ops.root_grows", &ops.root_grows, owner);
  registry->AddCounter(prefix + "ops.root_shrinks", &ops.root_shrinks,
                       owner);
  // Per-level node-read counters (level 0 = leaves); the top tracked
  // level absorbs anything deeper.
  for (int l = 0; l < TreeOpStats::kMaxTrackedLevels; ++l) {
    registry->AddCounter(prefix + "ops.level_reads." + std::to_string(l),
                         &ops.level_reads[l], owner);
  }
  registry->AddHistogram(prefix + "ops.insert_io", &ops.insert_io, owner);
  registry->AddHistogram(prefix + "ops.delete_io", &ops.delete_io, owner);
  registry->AddHistogram(prefix + "ops.search_io", &ops.search_io, owner);
  registry->AddHistogram(prefix + "ops.update_io", &ops.update_io, owner);
  registry->AddHistogram(prefix + "ops.insert_latency_us",
                         &ops.insert_latency_us, owner);
  registry->AddHistogram(prefix + "ops.delete_latency_us",
                         &ops.delete_latency_us, owner);
  registry->AddHistogram(prefix + "ops.search_latency_us",
                         &ops.search_latency_us, owner);
  registry->AddHistogram(prefix + "ops.update_latency_us",
                         &ops.update_latency_us, owner);

  // Structure and horizon-estimator gauges. These read fields that
  // writers mutate under the exclusive epoch, so each callback takes the
  // epoch shared — the monitor thread samples them racelessly.
  registry->AddGauge(prefix + "tree.height", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return static_cast<double>(height_);
  }, owner);
  registry->AddGauge(prefix + "tree.pages", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return static_cast<double>(file_->allocated_pages());
  }, owner);
  registry->AddGauge(prefix + "tree.leaf_entries", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return static_cast<double>(leaf_entries());
  }, owner);
  registry->AddGauge(prefix + "tree.underfull_remnants", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return static_cast<double>(underfull_remnants_);
  }, owner);
  registry->AddGauge(prefix + "tree.dat_entries", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return static_cast<double>(dat_.size());
  }, owner);
  registry->AddGauge(prefix + "tree.meta_epoch", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return static_cast<double>(meta_epoch_);
  }, owner);
  registry->AddCounter(prefix + "horizon.retunes", [this]() -> uint64_t {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return horizon_.retunes();
  }, owner);
  registry->AddGauge(prefix + "horizon.ui", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return horizon_.ui();
  }, owner);
  registry->AddGauge(prefix + "horizon.w", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return horizon_.w();
  }, owner);
  registry->AddGauge(prefix + "horizon.h", [this] {
    sched::ReaderMutexLock epoch(&epoch_mu_);
    return horizon_.DecisionHorizon();
  }, owner);

  metrics_registration_ = registry->MakeScoped(owner);
}

template <int kDims>
void Tree<kDims>::CheckInvariants(Time now) {
  verify::Report report = Verify(now);
  if (!report.ok()) {
    std::fprintf(stderr, "CheckInvariants failed:\n%s",
                 report.ToString().c_str());
    REXP_CHECK(false);
  }
}

template <int kDims>
double Tree<kDims>::ExpiredLeafFraction(Time now) {
  sched::WriterMutexLock epoch(&epoch_mu_);
  if (root_ == kInvalidPageId) return 0;
  uint64_t total = 0, expired = 0;
  std::vector<std::pair<PageId, int>> stack;
  stack.push_back({root_, height_ - 1});
  while (!stack.empty()) {
    auto [id, level] = stack.back();
    stack.pop_back();
    Node<kDims> node = ReadNode(id);
    for (const NodeEntry<kDims>& e : node.entries) {
      if (node.IsLeaf()) {
        ++total;
        if (e.region.t_exp < now) ++expired;
      } else {
        stack.push_back({e.id, level - 1});
      }
    }
  }
  return total == 0
             ? 0
             : static_cast<double>(expired) / static_cast<double>(total);
}

template <int kDims>
Status Tree<kDims>::VerifySubtree(PageId id, int level) {
  Page page(config_.page_size);
  REXP_RETURN_IF_ERROR(file_->ReadPage(id, &page));
  Node<kDims> node;
  codec_.Decode(page, &node);
  if (node.level != level) {
    return Status::Corruption(
        "page " + std::to_string(id) + ": node level " +
        std::to_string(node.level) + ", expected " + std::to_string(level));
  }
  if (level > 0) {
    for (const NodeEntry<kDims>& e : node.entries) {
      REXP_RETURN_IF_ERROR(VerifySubtree(e.id, level - 1));
    }
  }
  return Status::OK();
}

template <int kDims>
verify::Report Tree<kDims>::Verify(Time now) {
  sched::WriterMutexLock epoch(&epoch_mu_);
  return VerifyLocked(now);
}

template <int kDims>
verify::Report Tree<kDims>::VerifyLocked(Time now) {
  // The verifier reads pages straight off the device, so every buffered
  // change must be on it first.
  Status flush = buffer_.FlushDirty();
  if (!flush.ok()) {
    verify::Report report;
    report.findings.push_back(verify::Finding{
        verify::CheckId::kPageChecksum, kInvalidPageId, -1,
        "flush before verification failed: " + flush.ToString()});
    return report;
  }
  verify::TreeView view;
  view.root = root_;
  view.height = height_;
  view.level_counts = level_counts_;
  view.underfull_remnants = underfull_remnants_;
  view.ui = horizon_.ui();
  view.meta_epoch = meta_epoch_;
  view.page_limit = file_->capacity_pages();
  // Live accounting: every allocated page is a meta slot, a reachable
  // node, or accounted leaked (free and quarantined pages are not
  // allocated). Matches CheckInvariants.
  view.expected_reachable =
      file_->allocated_pages() - kNumMetaSlots - file_->leaked_pages();
  // Cross-check the direct-access table against the walk (kDatMapping).
  view.check_dat = true;
  view.dat.reserve(dat_.size());
  dat_.ForEach([&view](uint32_t oid, const DatEntry& e) {
    view.dat.push_back(verify::DatSnapshotEntry{oid, e.leaf, e.count});
  });
  verify::VerifyOptions options;
  options.now = now;
  return verify::TreeVerifier<kDims>::VerifyView(file_, config_, view,
                                                 options);
}

template <int kDims>
void Tree<kDims>::ParanoidVerify(Time now) {
#ifndef REXP_PARANOID
  (void)now;
#else
  static const uint64_t sample = [] {
    const char* s = std::getenv("REXP_PARANOID_SAMPLE");
    uint64_t v = 0;
    // Unset, garbage, or zero all mean "verify every mutation".
    if (s == nullptr || !ParseU64(s, &v) || v == 0) return uint64_t{1};
    return v;
  }();
  if (++paranoid_mutations_ % sample != 0) return;
  verify::Report report = VerifyLocked(now);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "REXP_PARANOID: post-mutation verification failed after "
                 "%llu mutations at now=%.6f\n%s",
                 static_cast<unsigned long long>(paranoid_mutations_), now,
                 report.ToString().c_str());
    std::fflush(stderr);
    std::abort();
  }
#endif
}

template <int kDims>
Status Tree<kDims>::VerifyPages() {
  sched::WriterMutexLock epoch(&epoch_mu_);
  // Un-flushed changes would make device frames legitimately stale;
  // verification is only meaningful over the flushed state.
  REXP_RETURN_IF_ERROR(buffer_.FlushDirty());
  // Verify the slot holding the current epoch. The other slot is allowed
  // to be damaged: after recovering from a commit torn mid-metadata-write
  // it legitimately stays torn until the next commit rewrites it.
  Page page(config_.page_size);
  REXP_RETURN_IF_ERROR(
      file_->ReadPage(static_cast<PageId>(meta_epoch_ & 1), &page));
  if (root_ == kInvalidPageId) return Status::OK();
  return VerifySubtree(root_, height_ - 1);
}

// ---------------------------------------------------------------------------

template Tpbr<1> MakeMovingPoint<1>(const Vec<1>&, const Vec<1>&, Time, Time);
template Tpbr<2> MakeMovingPoint<2>(const Vec<2>&, const Vec<2>&, Time, Time);
template Tpbr<3> MakeMovingPoint<3>(const Vec<3>&, const Vec<3>&, Time, Time);

template class Tree<1>;
template class Tree<2>;
template class Tree<3>;

}  // namespace rexp
