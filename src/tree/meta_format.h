// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// On-page layout of the tree's metadata slots, shared by the engine
// (tree.cc) and the offline tooling (verify/ and tools/rexp_fsck), which
// must parse a persisted index without instantiating a Tree.
//
// Metadata lives in two alternating page slots (pages 0 and 1). A commit
// with epoch e writes slot e & 1 — always the slot holding the *older*
// meta — so the newest durable meta survives any torn meta write. Open
// picks the valid slot with the highest epoch.
//
// Payload layout (little-endian, offsets in bytes):
//
//   0   u32  magic   "REXP"
//   4   u32  version
//   8   u32  dimensions
//   12  u32  reserved
//   16  u64  epoch (odd epochs live in slot 1, even in slot 0)
//   24  u32  root page id (kInvalidPageId when the tree is empty)
//   28  u32  height (number of levels; 0 iff the tree is empty)
//   32  u64  committed device capacity in pages
//   40  u64  underfull remnants left behind by the orphan cap
//   48  f64  horizon estimator UI
//   56  u64  per-level entry counts, kMetaMaxLevels slots, leaf first
//   216 u32  number of persisted free-list entries
//   220 u64  pages leaked to free-list truncation
//   228 u32  free-list page ids (as many as fit on the page)

#ifndef REXP_TREE_META_FORMAT_H_
#define REXP_TREE_META_FORMAT_H_

#include <cstdint>

#include "common/types.h"

namespace rexp {

inline constexpr uint32_t kMetaMagic = 0x52455850;  // "REXP"
inline constexpr uint32_t kMetaVersion = 2;
inline constexpr int kMetaMaxLevels = 20;

// Pages 0 and 1 are the two alternating metadata slots.
inline constexpr PageId kNumMetaSlots = 2;

// Field offsets of the meta payload.
inline constexpr uint32_t kMetaMagicFieldOffset = 0;
inline constexpr uint32_t kMetaVersionFieldOffset = 4;
inline constexpr uint32_t kMetaDimsFieldOffset = 8;
inline constexpr uint32_t kMetaEpochFieldOffset = 16;
inline constexpr uint32_t kMetaRootFieldOffset = 24;
inline constexpr uint32_t kMetaHeightFieldOffset = 28;
inline constexpr uint32_t kMetaCapacityFieldOffset = 32;
inline constexpr uint32_t kMetaUnderfullFieldOffset = 40;
inline constexpr uint32_t kMetaUiFieldOffset = 48;
inline constexpr uint32_t kMetaLevelCountsFieldOffset = 56;
inline constexpr uint32_t kMetaFreeCountFieldOffset =
    kMetaLevelCountsFieldOffset + 8 * kMetaMaxLevels;
inline constexpr uint32_t kMetaLeakedFieldOffset = kMetaFreeCountFieldOffset + 4;
inline constexpr uint32_t kMetaFreeListOffset = kMetaLeakedFieldOffset + 8;

}  // namespace rexp

#endif  // REXP_TREE_META_FORMAT_H_
