// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Flight recorder: a fixed-size lock-free ring of the most recent index
// operations (oid, op, latency, status, I/O). Recording is wait-free —
// one fetch_add to claim a slot, plain stores of the fields, then a
// release store of the slot's ticket — so the hot path pays a few
// nanoseconds and never blocks, at the cost that a dump taken while
// writers are racing may skip the (few) slots being overwritten at that
// instant: the dumper validates each slot's ticket and drops torn ones.
//
// The point of the recorder is the dump: when the process dies — fatal
// Status path, REXP_CHECK failure, std::terminate, SIGTERM/SIGINT — the
// last `capacity` operations are written as one JSON object, giving the
// repair tooling (PR 6) a "what happened right before corruption"
// artifact. DumpToFd is async-signal-safe: it formats integers by hand
// into a stack buffer and uses write(2) only — no malloc, no stdio.
//
// Dump shape (version 1):
//   {"v":1,"reason":"...","pid":N,"capacity":N,"recorded":N,"dropped":N,
//    "events":[{"seq":N,"wall_ms":N,"op":"insert","oid":N,
//               "latency_us":N,"status":N,"io":N}, ...]}
// `events` is oldest-first; `dropped` counts events that fell off the
// ring before the dump; `status` is the numeric StatusCode (0 = OK);
// `latency_us` is a whole number of microseconds; `wall_ms` is
// milliseconds since the recorder was constructed.
//
// With REXP_NO_TELEMETRY, Record compiles to nothing and dumps contain
// zero events (the dump machinery itself stays, so fatal paths still
// produce a parseable artifact).

#ifndef REXP_OBS_FLIGHT_RECORDER_H_
#define REXP_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace rexp::obs {

// Operation kinds recorded; serialized by name in dumps.
enum class FlightOp : uint8_t {
  kOther = 0,
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
  kSearch = 4,
  kNn = 5,
  kGroupUpdate = 6,
  kCommit = 7,
  kBulkLoad = 8,
};

const char* FlightOpName(FlightOp op);

class FlightRecorder {
 public:
  // `capacity` is rounded up to a power of two (min 64).
  explicit FlightRecorder(size_t capacity = 1024);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Wait-free; callable from any thread. Gated on telemetry::Enabled().
  void Record(FlightOp op, uint64_t oid, double latency_us, StatusCode code,
              uint64_t io);

  // Total operations ever recorded (>= what the ring still holds).
  uint64_t recorded() const {
#ifdef REXP_NO_TELEMETRY
    return 0;
#else
    return next_.load(std::memory_order_relaxed);
#endif
  }

  size_t capacity() const { return capacity_; }

  // Writes the dump JSON to `fd`. Async-signal-safe (no allocation, no
  // stdio, no locks — slots whose ticket is torn mid-write are skipped).
  void DumpToFd(int fd, const char* reason) const;

  // Convenience: creates/truncates `path` and dumps into it. Not
  // signal-safe (open may allocate); fatal-hook paths precompute the fd
  // or use DumpToFile from non-signal contexts only.
  Status DumpToFile(const std::string& path, const char* reason) const;

 private:
  struct Slot {
    // ticket == claim index + 1, stored with release order after the
    // fields; 0 = never written. The dumper re-checks it after reading
    // the fields and drops the slot on mismatch.
    std::atomic<uint64_t> ticket{0};
    uint64_t oid = 0;
    uint32_t wall_ms = 0;     // Since recorder construction.
    uint32_t latency_us = 0;  // Saturated at ~71 min.
    uint32_t io = 0;
    uint8_t op = 0;
    uint8_t status = 0;
  };

  size_t capacity_;  // Power of two.
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};
  std::chrono::steady_clock::time_point epoch_;
};

// The process-wide recorder the trees feed and the fatal hooks dump.
FlightRecorder& GlobalFlightRecorder();

// Installs the fatal-path dump hooks:
//   * a std::terminate handler (chains any previous handler),
//   * SIGTERM/SIGINT handlers (dump, restore default, re-raise),
//   * the REXP_CHECK failure hook (common/check.h).
// The dump lands at $REXP_FLIGHT_DIR/flight_recorder.<pid>.json (cwd when
// the variable is unset); the path is resolved at install time so the
// signal path does no allocation. Idempotent; thread-safe.
void InstallFlightRecorderDumpHandlers();

// Dumps the global recorder to the precomputed install-time path (or
// $REXP_FLIGHT_DIR/flight_recorder.<pid>.json resolved now if the
// handlers were never installed). Used by rexp_fsck on findings so a
// corrupt index leaves the recent-op context next to the fsck report.
// Returns the path written, or empty on failure.
std::string DumpFlightRecorderNow(const char* reason);

}  // namespace rexp::obs

#endif  // REXP_OBS_FLIGHT_RECORDER_H_
