// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "obs/trace.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/check.h"

namespace rexp::obs {

namespace {

// Live-tracer registry for the fatal-path flush (FlushAllTracers). The
// mutex ordering is list mutex -> tracer mutex (Flush); no code path
// takes them in the other order, hence the list mutex's higher rank.
sched::Mutex& TracerListMutex() {
  static sched::Mutex mu{sched::LockRank::kRegistry, "tracer_list"};
  return mu;
}

std::vector<Tracer*>& TracerList() {
  static std::vector<Tracer*> list;
  return list;
}

}  // namespace

void FlushAllTracers() {
  sched::MutexLock lock(&TracerListMutex());
  for (Tracer* t : TracerList()) t->Flush();
}

StatusOr<std::unique_ptr<Tracer>> Tracer::OpenFile(const std::string& path,
                                                   bool append) {
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Status::IOError("open trace file '" + path + "'");
  }
  // Line buffering: each complete event line reaches the kernel as it is
  // produced, so a crash truncates the stream at a line boundary instead
  // of losing a whole stdio buffer (the crash-safety satellite of the
  // versioned schema — scripts/check_trace.py tolerates a torn final
  // line but nothing else).
  std::setvbuf(f, nullptr, _IOLBF, 1 << 16);
  return std::make_unique<Tracer>(f, /*owns=*/true);
}

Tracer::Tracer(std::FILE* f, bool owns) : file_(f), owns_(owns) {
  REXP_CHECK(f != nullptr);
  {
    sched::MutexLock lock(&TracerListMutex());
    TracerList().push_back(this);
  }
#ifndef REXP_NO_TELEMETRY
  // Stream header: names the schema version so offline consumers can
  // dispatch. Append mode re-emits it — a multi-run file simply carries
  // one header per run.
  sched::MutexLock lock(&mu_);
  BeginLineLocked("trace_meta");
  AppendFieldLocked("v", kTraceSchemaVersion);
  FinishLineLocked();
#endif
}

Tracer::~Tracer() {
  {
    sched::MutexLock lock(&TracerListMutex());
    auto& list = TracerList();
    list.erase(std::remove(list.begin(), list.end(), this), list.end());
  }
  Flush();
  if (owns_) std::fclose(file_);
}

void Tracer::Flush() {
  sched::MutexLock lock(&mu_);
  std::fflush(file_);
}

void Tracer::set_span_sample(uint64_t n) {
  sched::MutexLock lock(&mu_);
  span_sample_ = n == 0 ? 1 : n;
}

void Tracer::BeginLineLocked(const char* type) {
  line_.clear();
  line_ += "{\"seq\":";
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), seq_++);
  REXP_CHECK(ec == std::errc());
  line_.append(buf, ptr);
  line_ += ",\"type\":\"";
  line_ += type;  // Event types are code literals; no escaping needed.
  line_ += '"';
}

void Tracer::AppendFieldLocked(const char* key, double value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  char buf[32];
  if (!std::isfinite(value)) {
    line_ += "null";
  } else if (value == std::floor(value) &&
             std::fabs(value) < 9.007199254740992e15) {  // 2^53: exact.
    // Counts and ids render as integers.
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                   static_cast<int64_t>(value));
    REXP_CHECK(ec == std::errc());
    line_.append(buf, ptr);
  } else {
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    REXP_CHECK(ec == std::errc());
    line_.append(buf, ptr);
  }
}

void Tracer::AppendRawLocked(const char* key, const char* raw) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += raw;
}

void Tracer::FinishLineLocked() {
  line_ += "}\n";
  std::fwrite(line_.data(), 1, line_.size(), file_);
}

void Tracer::Emit(const char* type,
                  std::initializer_list<TraceField> fields) {
#ifdef REXP_NO_TELEMETRY
  (void)type;
  (void)fields;
#else
  sched::MutexLock lock(&mu_);
  if (!span_stack_.empty() && span_stack_.back().id == 0) return;
  BeginLineLocked(type);
  if (!span_stack_.empty()) {
    AppendFieldLocked("span", static_cast<double>(span_stack_.back().id));
  }
  for (const TraceField& f : fields) AppendFieldLocked(f.key, f.value);
  FinishLineLocked();
#endif
}

uint64_t Tracer::BeginSpan(const char* type,
                           std::initializer_list<TraceField> fields) {
#ifdef REXP_NO_TELEMETRY
  (void)type;
  (void)fields;
  return 0;
#else
  sched::MutexLock lock(&mu_);
  // Sampling decision at the top level; children inherit suppression.
  bool suppressed;
  if (span_stack_.empty()) {
    suppressed = (top_level_spans_++ % span_sample_) != 0;
  } else {
    suppressed = span_stack_.back().id == 0;
  }
  if (suppressed) {
    span_stack_.push_back(OpenSpan{0, type, {}});
    return 0;
  }
  const uint64_t parent = span_stack_.empty() ? 0 : span_stack_.back().id;
  const uint64_t id = next_span_id_++;
  BeginLineLocked(type);
  AppendRawLocked("ph", "\"B\"");
  AppendFieldLocked("span", static_cast<double>(id));
  if (parent != 0) AppendFieldLocked("parent", static_cast<double>(parent));
  for (const TraceField& f : fields) AppendFieldLocked(f.key, f.value);
  FinishLineLocked();
  span_stack_.push_back(OpenSpan{id, type, std::chrono::steady_clock::now()});
  return id;
#endif
}

void Tracer::EndSpan(std::initializer_list<TraceField> fields) {
#ifdef REXP_NO_TELEMETRY
  (void)fields;
#else
  sched::MutexLock lock(&mu_);
  REXP_CHECK(!span_stack_.empty());
  OpenSpan span = span_stack_.back();
  span_stack_.pop_back();
  if (span.id == 0) return;
  const double dur_us =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - span.start)
              .count()) *
      1e-3;
  BeginLineLocked(span.type);
  AppendRawLocked("ph", "\"E\"");
  AppendFieldLocked("span", static_cast<double>(span.id));
  AppendFieldLocked("dur_us", dur_us);
  for (const TraceField& f : fields) AppendFieldLocked(f.key, f.value);
  FinishLineLocked();
#endif
}

}  // namespace rexp::obs
