// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "obs/trace.h"

#include <charconv>
#include <cmath>

#include "common/check.h"

namespace rexp::obs {

StatusOr<std::unique_ptr<Tracer>> Tracer::OpenFile(const std::string& path,
                                                   bool append) {
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Status::IOError("open trace file '" + path + "'");
  }
  return std::make_unique<Tracer>(f, /*owns=*/true);
}

Tracer::Tracer(std::FILE* f, bool owns) : file_(f), owns_(owns) {
  REXP_CHECK(f != nullptr);
}

Tracer::~Tracer() {
  Flush();
  if (owns_) std::fclose(file_);
}

void Tracer::Flush() { std::fflush(file_); }

void Tracer::Emit(const char* type,
                  std::initializer_list<TraceField> fields) {
#ifdef REXP_NO_TELEMETRY
  (void)type;
  (void)fields;
#else
  std::lock_guard<std::mutex> lock(mu_);
  line_.clear();
  line_ += "{\"seq\":";
  char buf[32];
  auto append_u64 = [&](uint64_t v) {
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    REXP_CHECK(ec == std::errc());
    line_.append(buf, ptr);
  };
  append_u64(seq_++);
  line_ += ",\"type\":\"";
  line_ += type;  // Event types are code literals; no escaping needed.
  line_ += '"';
  for (const TraceField& f : fields) {
    line_ += ",\"";
    line_ += f.key;
    line_ += "\":";
    if (!std::isfinite(f.value)) {
      line_ += "null";
    } else if (f.value == std::floor(f.value) &&
               std::fabs(f.value) < 9.007199254740992e15) {  // 2^53: exact.
      // Counts and ids render as integers.
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf),
                                     static_cast<int64_t>(f.value));
      REXP_CHECK(ec == std::errc());
      line_.append(buf, ptr);
    } else {
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), f.value);
      REXP_CHECK(ec == std::errc());
      line_.append(buf, ptr);
    }
  }
  line_ += "}\n";
  std::fwrite(line_.data(), 1, line_.size(), file_);
#endif
}

}  // namespace rexp::obs
