// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "obs/registry.h"

#include "common/check.h"
#include "obs/json_writer.h"

namespace rexp::obs {

void MetricsRegistry::AddCounter(std::string name, const uint64_t* v) {
  REXP_CHECK(v != nullptr);
  counters_.emplace_back(std::move(name), [v] { return *v; });
}

void MetricsRegistry::AddCounter(std::string name,
                                 const std::atomic<uint64_t>* v) {
  REXP_CHECK(v != nullptr);
  counters_.emplace_back(
      std::move(name), [v] { return v->load(std::memory_order_relaxed); });
}

void MetricsRegistry::AddCounter(std::string name,
                                 std::function<uint64_t()> fn) {
  counters_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::AddGauge(std::string name,
                               std::function<double()> fn) {
  gauges_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::AddHistogram(std::string name, const Histogram* h) {
  REXP_CHECK(h != nullptr);
  histograms_.emplace_back(std::move(name), h);
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, fn] : counters_) {
    samples.push_back(
        MetricSample{name, static_cast<double>(fn()), /*is_counter=*/true});
  }
  for (const auto& [name, fn] : gauges_) {
    samples.push_back(MetricSample{name, fn(), /*is_counter=*/false});
  }
  return samples;
}

bool MetricsRegistry::Lookup(const std::string& name, double* value) const {
  for (const auto& [n, fn] : counters_) {
    if (n == name) {
      *value = static_cast<double>(fn());
      return true;
    }
  }
  for (const auto& [n, fn] : gauges_) {
    if (n == name) {
      *value = fn();
      return true;
    }
  }
  return false;
}

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, fn] : counters_) {
    w.Key(name.c_str()).Value(fn());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, fn] : gauges_) {
    w.Key(name.c_str()).Value(fn());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name.c_str()).BeginObject();
    w.KV("count", h->count());
    w.KV("sum", h->sum());
    w.KV("min", h->min());
    w.KV("max", h->max());
    w.KV("mean", h->mean());
    w.KV("p50", h->Percentile(0.50));
    w.KV("p90", h->Percentile(0.90));
    w.KV("p99", h->Percentile(0.99));
    w.Key("buckets").BeginArray();
    const auto& bounds = h->bounds();
    const auto& counts = h->bucket_counts();
    for (size_t b = 0; b < counts.size(); ++b) {
      w.BeginObject();
      if (b < bounds.size()) {
        w.KV("le", bounds[b]);
      } else {
        // Overflow bucket: no finite upper bound.
        w.Key("le").RawValue("null");
      }
      w.KV("count", counts[b]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace rexp::obs
