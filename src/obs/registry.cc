// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "obs/registry.h"

#include <algorithm>

#include "common/check.h"
#include "obs/json_writer.h"

namespace rexp::obs {

void MetricsRegistry::Unregister(OwnerId owner) {
  if (owner == kPermanentOwner) return;
  sched::MutexLock lock(&mu_);
  auto drop = [owner](auto& bindings) {
    bindings.erase(
        std::remove_if(bindings.begin(), bindings.end(),
                       [owner](const auto& b) { return b.owner == owner; }),
        bindings.end());
  };
  drop(counters_);
  drop(gauges_);
  drop(histograms_);
}

void MetricsRegistry::AddCounter(std::string name, const uint64_t* v,
                                 OwnerId owner) {
  REXP_CHECK(v != nullptr);
  sched::MutexLock lock(&mu_);
  counters_.push_back({std::move(name), [v] { return *v; }, owner});
}

void MetricsRegistry::AddCounter(std::string name,
                                 const std::atomic<uint64_t>* v,
                                 OwnerId owner) {
  REXP_CHECK(v != nullptr);
  sched::MutexLock lock(&mu_);
  counters_.push_back(
      {std::move(name),
       [v] { return v->load(std::memory_order_relaxed); }, owner});
}

void MetricsRegistry::AddCounter(std::string name,
                                 std::function<uint64_t()> fn,
                                 OwnerId owner) {
  sched::MutexLock lock(&mu_);
  counters_.push_back({std::move(name), std::move(fn), owner});
}

void MetricsRegistry::AddGauge(std::string name, std::function<double()> fn,
                               OwnerId owner) {
  sched::MutexLock lock(&mu_);
  gauges_.push_back({std::move(name), std::move(fn), owner});
}

void MetricsRegistry::AddHistogram(std::string name, const Histogram* h,
                                   OwnerId owner) {
  REXP_CHECK(h != nullptr);
  sched::MutexLock lock(&mu_);
  histograms_.push_back({std::move(name), h, owner});
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  sched::MutexLock lock(&mu_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size());
  for (const auto& b : counters_) {
    samples.push_back(MetricSample{b.name, static_cast<double>(b.read()),
                                   /*is_counter=*/true});
  }
  for (const auto& b : gauges_) {
    samples.push_back(MetricSample{b.name, b.read(), /*is_counter=*/false});
  }
  return samples;
}

std::vector<HistogramSnapshot> MetricsRegistry::SnapshotHistograms() const {
  sched::MutexLock lock(&mu_);
  std::vector<HistogramSnapshot> snaps;
  snaps.reserve(histograms_.size());
  for (const auto& b : histograms_) {
    HistogramSnapshot s;
    s.name = b.name;
    s.count = b.read->count();
    s.sum = b.read->sum();
    s.min = b.read->min();
    s.max = b.read->max();
    s.bounds = b.read->bounds();
    s.bucket_counts = b.read->bucket_counts();
    snaps.push_back(std::move(s));
  }
  return snaps;
}

bool MetricsRegistry::Lookup(const std::string& name, double* value) const {
  sched::MutexLock lock(&mu_);
  for (const auto& b : counters_) {
    if (b.name == name) {
      *value = static_cast<double>(b.read());
      return true;
    }
  }
  for (const auto& b : gauges_) {
    if (b.name == name) {
      *value = b.read();
      return true;
    }
  }
  return false;
}

std::string MetricsRegistry::ToJson() const {
  sched::MutexLock lock(&mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& b : counters_) {
    w.Key(b.name.c_str()).Value(b.read());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& b : gauges_) {
    w.Key(b.name.c_str()).Value(b.read());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& b : histograms_) {
    const Histogram* h = b.read;
    w.Key(b.name.c_str()).BeginObject();
    w.KV("count", h->count());
    w.KV("sum", h->sum());
    w.KV("min", h->min());
    w.KV("max", h->max());
    w.KV("mean", h->mean());
    w.KV("p50", h->Percentile(0.50));
    w.KV("p90", h->Percentile(0.90));
    w.KV("p99", h->Percentile(0.99));
    w.Key("buckets").BeginArray();
    const auto& bounds = h->bounds();
    const auto& counts = h->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      w.BeginObject();
      if (i < bounds.size()) {
        w.KV("le", bounds[i]);
      } else {
        // Overflow bucket: no finite upper bound.
        w.Key("le").RawValue("null");
      }
      w.KV("count", counts[i]);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace rexp::obs
