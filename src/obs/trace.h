// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Structured per-operation tracing: a JSONL event stream (one JSON object
// per line) describing what the index did — ChooseSubtree descents,
// splits, forced reinserts, lazy-purge removals, TPBR recomputations,
// horizon retunes, and per-operation summaries with I/O deltas. Schema:
//
//   {"seq": N, "type": "<event>", "<field>": <number>, ...}
//
// `seq` is a monotone per-tracer event number (events of one logical
// operation are consecutive; the operation-summary event — "insert",
// "delete", "search", "nn" — closes the group). All field values are
// numbers; field names per event type are documented in DESIGN.md
// ("Observability").
//
// Cost model: a tree without a tracer attached pays one null-pointer test
// per potential event. With a tracer attached, each event is formatted
// and buffered through stdio — tracing is a debugging/analysis tool, not
// a production default. With REXP_NO_TELEMETRY, Emit compiles to nothing.

#ifndef REXP_OBS_TRACE_H_
#define REXP_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace rexp::obs {

// One numeric field of a trace event.
struct TraceField {
  const char* key;
  double value;
};

class Tracer {
 public:
  // Opens (creating or truncating) a JSONL file at `path`. With
  // `append`, an existing stream is extended instead — the mode the
  // REXP_TRACE environment hook uses so one file collects a whole
  // benchmark run.
  static StatusOr<std::unique_ptr<Tracer>> OpenFile(const std::string& path,
                                                    bool append = false);

  // Adopts an open stream. With `owns`, the stream is closed on
  // destruction (pass false for stdout/stderr).
  explicit Tracer(std::FILE* f, bool owns);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  ~Tracer();

  // Thread-safe: concurrent reader epochs emitting events serialize on
  // an internal mutex, so lines never interleave and `seq` stays
  // monotone (events of one logical operation are still consecutive
  // because only the exclusive writer emits multi-event groups).
  void Emit(const char* type, std::initializer_list<TraceField> fields);

  uint64_t events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return seq_;
  }

  // Pushes buffered events to the stream.
  void Flush();

 private:
  mutable std::mutex mu_;
  std::FILE* file_;
  bool owns_;
  uint64_t seq_ = 0;
  std::string line_;  // Reused formatting buffer (guarded by mu_).
};

}  // namespace rexp::obs

#endif  // REXP_OBS_TRACE_H_
