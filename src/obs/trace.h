// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Structured per-operation tracing: a JSONL event stream (one JSON object
// per line) describing what the index did — ChooseSubtree descents,
// splits, forced reinserts, lazy-purge removals, TPBR recomputations,
// horizon retunes, and per-operation spans with I/O and latency
// attribution. Schema (version 2):
//
//   {"seq":0,"type":"trace_meta","v":2}            <- stream header
//   {"seq":N,"type":"<op>","ph":"B","span":S,["parent":P,]...}
//   {"seq":N,"type":"<event>",["span":S,]<field>:<number>,...}
//   {"seq":N,"type":"<op>","ph":"E","span":S,"dur_us":X,...}
//
// `seq` is a monotone per-tracer event number. Spans nest: BeginSpan
// pushes a new span (emitting the "B" event, with `parent` naming the
// enclosing span when there is one) and EndSpan pops it (emitting the
// matching "E" event with the span's wall time in `dur_us` plus any
// caller fields, e.g. the operation's exact buffer I/O delta). Point
// events emitted between the two carry `span` naming the innermost open
// span, so one Insert's descent, split, and write-back children are
// attributable to it. All other field values are numbers; field names
// per event type are documented in DESIGN.md §7 and validated by
// scripts/check_trace.py.
//
// Sampling: set_span_sample(n) keeps every n-th *top-level* span group
// and drops the rest wholesale (begin, children, end) — the continuous-
// profiling posture, where a sampled share of full operation traces is
// enough and the hot path pays only a counter test on unsampled ops.
// REXP_TRACE_SAMPLE=<n> configures the harness's tracer the same way.
//
// Cost model: a tree without a tracer attached pays one null-pointer test
// per potential event. With a tracer attached, each sampled event is
// formatted and written through a line-buffered stdio stream — every
// complete line reaches the kernel immediately, so a crash loses at most
// the line being formatted (the crash-safety contract the flight
// recorder's fatal hook relies on; the hook additionally flushes all
// live tracers via FlushAllTracers). With REXP_NO_TELEMETRY, Emit,
// BeginSpan, and EndSpan compile to nothing.

#ifndef REXP_OBS_TRACE_H_
#define REXP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "sched/mutex.h"

namespace rexp::obs {

// The trace schema version this tracer writes (the "v" of trace_meta).
inline constexpr int kTraceSchemaVersion = 2;

// One numeric field of a trace event.
struct TraceField {
  const char* key;
  double value;
};

class Tracer {
 public:
  // Opens (creating or truncating) a JSONL file at `path`. With
  // `append`, an existing stream is extended instead — the mode the
  // REXP_TRACE environment hook uses so one file collects a whole
  // benchmark run. The stream is line-buffered (crash-safe per line).
  static StatusOr<std::unique_ptr<Tracer>> OpenFile(const std::string& path,
                                                    bool append = false);

  // Adopts an open stream. With `owns`, the stream is closed on
  // destruction (pass false for stdout/stderr).
  explicit Tracer(std::FILE* f, bool owns);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  ~Tracer();

  // Thread-safe: concurrent reader epochs emitting events serialize on
  // an internal mutex, so lines never interleave and `seq` stays
  // monotone (events of one logical operation are still consecutive
  // because only the exclusive writer emits multi-event groups).
  void Emit(const char* type, std::initializer_list<TraceField> fields)
      EXCLUDES(mu_);

  // Opens a span of type `type`, emitting its "B" event, and returns the
  // span id (0 when the span was sampled out or telemetry is compiled
  // out). Spans nest; the caller must balance every BeginSpan with one
  // EndSpan. Span structure is only meaningful from the exclusive
  // writer (see Emit).
  uint64_t BeginSpan(const char* type,
                     std::initializer_list<TraceField> fields = {})
      EXCLUDES(mu_);

  // Closes the innermost open span, emitting its "E" event with the
  // span's wall time as `dur_us` plus `fields` (I/O deltas etc.).
  void EndSpan(std::initializer_list<TraceField> fields = {}) EXCLUDES(mu_);

  // Keeps every n-th top-level span group (n >= 1; default 1 = all).
  void set_span_sample(uint64_t n) EXCLUDES(mu_);

  uint64_t events() const EXCLUDES(mu_) {
    sched::MutexLock lock(&mu_);
    return seq_;
  }

  // Pushes buffered events to the stream.
  void Flush() EXCLUDES(mu_);

 private:
  struct OpenSpan {
    uint64_t id;  // 0: span suppressed by sampling.
    const char* type;
    std::chrono::steady_clock::time_point start;
  };

  // Formatting helpers; caller holds mu_.
  void BeginLineLocked(const char* type) REQUIRES(mu_);
  void AppendFieldLocked(const char* key, double value) REQUIRES(mu_);
  void AppendRawLocked(const char* key, const char* raw) REQUIRES(mu_);
  void FinishLineLocked() REQUIRES(mu_);

  mutable sched::Mutex mu_{sched::LockRank::kLeaf, "tracer"};
  // Both set in the constructor and never reassigned; the FILE object
  // itself is only written under mu_ (and closed in the destructor).
  std::FILE* file_;
  bool owns_;
  uint64_t seq_ GUARDED_BY(mu_) = 0;
  uint64_t next_span_id_ GUARDED_BY(mu_) = 1;
  uint64_t top_level_spans_ GUARDED_BY(mu_) = 0;
  uint64_t span_sample_ GUARDED_BY(mu_) = 1;
  std::vector<OpenSpan> span_stack_ GUARDED_BY(mu_);
  std::string line_ GUARDED_BY(mu_);  // Reused formatting buffer.
};

// Flushes every live Tracer in the process. Called from the flight
// recorder's fatal paths so a crash leaves complete trace files behind.
// Not async-signal-safe; fatal hooks other than signal handlers only.
void FlushAllTracers();

}  // namespace rexp::obs

#endif  // REXP_OBS_TRACE_H_
