// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// MetricsRegistry: the named view over the telemetry embedded in the
// index components. Components keep their hot-path counters as plain
// struct members (see metrics.h for the overhead model); registration
// binds a *name* to a read callback (or histogram pointer) once, at setup
// time, and Snapshot()/ToJson() walk the bindings on demand. Reading is a
// cold path — snapshots are taken between measurement phases or by the
// background monitor thread, never inside index operations.
//
// Lifetime: the registry stores callbacks that dereference the
// registered component, so a component must not be destroyed while its
// bindings remain. Components therefore register under an owner id and
// hold a ScopedRegistration, which removes every binding of that owner
// when the component dies — in either destruction order: if the registry
// dies first, the ScopedRegistration's weak token expires and its
// destructor does nothing.
//
// Thread safety: all methods are safe to call concurrently — the monitor
// samples from a background thread while components register and
// unregister. Callbacks run under the registry mutex; they must not call
// back into the registry.

#ifndef REXP_OBS_REGISTRY_H_
#define REXP_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "sched/mutex.h"

namespace rexp::obs {

class MetricsRegistry;

// Identifies one component's bindings. 0 is the permanent owner: its
// bindings are never unregistered (process-lifetime components).
using OwnerId = uint64_t;
constexpr OwnerId kPermanentOwner = 0;

// One named scalar sample (counters and gauges) at snapshot time.
struct MetricSample {
  std::string name;
  double value = 0;
  bool is_counter = false;
};

// A consistent copy of one registered histogram — enough to diff bucket
// counts across monitor intervals and re-derive percentiles from the
// delta (Monitor does exactly that).
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  // bounds.size() + 1 (overflow last).
};

// RAII handle for one owner's bindings: unregisters them on destruction.
// Safe against the registry being destroyed first — the handle holds a
// weak token, not a raw pointer. Move-only; a default-constructed handle
// is inert.
class ScopedRegistration {
 public:
  ScopedRegistration() = default;
  ScopedRegistration(ScopedRegistration&& other) noexcept {
    *this = std::move(other);
  }
  ScopedRegistration& operator=(ScopedRegistration&& other) noexcept;

  ScopedRegistration(const ScopedRegistration&) = delete;
  ScopedRegistration& operator=(const ScopedRegistration&) = delete;

  ~ScopedRegistration() { Reset(); }

  // Unregisters now (if the registry is still alive) and becomes inert.
  void Reset();

  bool active() const { return !registry_.expired(); }
  OwnerId owner() const { return owner_; }

 private:
  friend class MetricsRegistry;
  ScopedRegistration(std::weak_ptr<MetricsRegistry*> registry, OwnerId owner)
      : registry_(std::move(registry)), owner_(owner) {}

  std::weak_ptr<MetricsRegistry*> registry_;
  OwnerId owner_ = kPermanentOwner;
};

class MetricsRegistry {
 public:
  MetricsRegistry()
      : self_(std::make_shared<MetricsRegistry*>(this)) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Allocates a fresh owner id for a component about to register a batch
  // of bindings.
  OwnerId NewOwner() {
    return next_owner_.fetch_add(1, std::memory_order_relaxed);
  }

  // Removes every binding registered under `owner`. No-op for
  // kPermanentOwner or an owner with no bindings.
  void Unregister(OwnerId owner) EXCLUDES(mu_);

  // Wraps `owner` in a handle that unregisters on destruction.
  ScopedRegistration MakeScoped(OwnerId owner) {
    return ScopedRegistration(std::weak_ptr<MetricsRegistry*>(self_), owner);
  }

  // Binds `name` to a live counter value. The pointer overloads are the
  // common case of a (plain or atomic) uint64_t member; the callback
  // overload covers derived counts.
  void AddCounter(std::string name, const uint64_t* v,
                  OwnerId owner = kPermanentOwner) EXCLUDES(mu_);
  void AddCounter(std::string name, const std::atomic<uint64_t>* v,
                  OwnerId owner = kPermanentOwner) EXCLUDES(mu_);
  void AddCounter(std::string name, std::function<uint64_t()> fn,
                  OwnerId owner = kPermanentOwner) EXCLUDES(mu_);

  // Binds `name` to a point-in-time measurement (heights, fractions,
  // horizon estimates, ...).
  void AddGauge(std::string name, std::function<double()> fn,
                OwnerId owner = kPermanentOwner) EXCLUDES(mu_);

  // Binds `name` to a histogram owned by the component.
  void AddHistogram(std::string name, const Histogram* h,
                    OwnerId owner = kPermanentOwner) EXCLUDES(mu_);

  // Current values of all registered counters and gauges, in
  // registration order.
  std::vector<MetricSample> Snapshot() const EXCLUDES(mu_);

  // Consistent copies of all registered histograms, in registration
  // order. The monitor diffs consecutive snapshots for per-interval
  // percentiles.
  std::vector<HistogramSnapshot> SnapshotHistograms() const EXCLUDES(mu_);

  // Value of a registered scalar by exact name; false if absent. Test
  // and tooling convenience.
  bool Lookup(const std::string& name, double* value) const EXCLUDES(mu_);

  // The full snapshot as one JSON object:
  //   {"counters": {name: n, ...},
  //    "gauges": {name: x, ...},
  //    "histograms": {name: {"count": n, "sum": x, "min": x, "max": x,
  //                          "mean": x, "p50": x, "p90": x, "p99": x,
  //                          "buckets": [{"le": bound, "count": n}, ...]},
  //                   ...}}
  // The final bucket's "le" is null (the overflow bucket).
  std::string ToJson() const EXCLUDES(mu_);

 private:
  template <typename Fn>
  struct Binding {
    std::string name;
    Fn read;
    OwnerId owner;
  };

  // kRegistry outranks the component locks (kLiveTier, kTreeEpoch, ...)
  // because snapshot callbacks run under mu_ and may take them; only the
  // monitor lock sits above (Monitor::SampleLocked snapshots under its
  // own mutex).
  mutable sched::Mutex mu_{sched::LockRank::kRegistry, "metrics_registry"};
  std::atomic<OwnerId> next_owner_{1};
  std::vector<Binding<std::function<uint64_t()>>> counters_ GUARDED_BY(mu_);
  std::vector<Binding<std::function<double()>>> gauges_ GUARDED_BY(mu_);
  std::vector<Binding<const Histogram*>> histograms_ GUARDED_BY(mu_);
  // Liveness token for ScopedRegistration; expires with the registry.
  std::shared_ptr<MetricsRegistry*> self_;
};

inline ScopedRegistration& ScopedRegistration::operator=(
    ScopedRegistration&& other) noexcept {
  if (this != &other) {
    Reset();
    registry_ = std::move(other.registry_);
    owner_ = other.owner_;
    other.registry_.reset();
  }
  return *this;
}

inline void ScopedRegistration::Reset() {
  if (auto token = registry_.lock()) {
    (*token)->Unregister(owner_);
  }
  registry_.reset();
  owner_ = kPermanentOwner;
}

}  // namespace rexp::obs

#endif  // REXP_OBS_REGISTRY_H_
