// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// MetricsRegistry: the named view over the telemetry embedded in the
// index components. Components keep their hot-path counters as plain
// struct members (see metrics.h for the overhead model); registration
// binds a *name* to a read callback (or histogram pointer) once, at setup
// time, and Snapshot()/ToJson() walk the bindings on demand. Reading is a
// cold path — snapshots are taken between measurement phases, never
// inside index operations.
//
// Lifetime: the registry stores callbacks that dereference the
// registered component; every registered component must outlive the
// registry (or at least every Snapshot/ToJson call).

#ifndef REXP_OBS_REGISTRY_H_
#define REXP_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rexp::obs {

// One named scalar sample (counters and gauges) at snapshot time.
struct MetricSample {
  std::string name;
  double value = 0;
  bool is_counter = false;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Binds `name` to a live counter value. The pointer overloads are the
  // common case of a (plain or atomic) uint64_t member; the callback
  // overload covers derived counts.
  void AddCounter(std::string name, const uint64_t* v);
  void AddCounter(std::string name, const std::atomic<uint64_t>* v);
  void AddCounter(std::string name, std::function<uint64_t()> fn);

  // Binds `name` to a point-in-time measurement (heights, fractions,
  // horizon estimates, ...).
  void AddGauge(std::string name, std::function<double()> fn);

  // Binds `name` to a histogram owned by the component.
  void AddHistogram(std::string name, const Histogram* h);

  // Current values of all registered counters and gauges, in
  // registration order.
  std::vector<MetricSample> Snapshot() const;

  // Value of a registered scalar by exact name; false if absent. Test
  // and tooling convenience.
  bool Lookup(const std::string& name, double* value) const;

  // The full snapshot as one JSON object:
  //   {"counters": {name: n, ...},
  //    "gauges": {name: x, ...},
  //    "histograms": {name: {"count": n, "sum": x, "min": x, "max": x,
  //                          "mean": x, "p50": x, "p90": x, "p99": x,
  //                          "buckets": [{"le": bound, "count": n}, ...]},
  //                   ...}}
  // The final bucket's "le" is null (the overflow bucket).
  std::string ToJson() const;

 private:
  std::vector<std::pair<std::string, std::function<uint64_t()>>> counters_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

}  // namespace rexp::obs

#endif  // REXP_OBS_REGISTRY_H_
