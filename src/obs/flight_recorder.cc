// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "obs/flight_recorder.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>  // std-mutex-ok: once_flag/call_once only, no locks.

#include <fcntl.h>
#include <unistd.h>

#include "common/check.h"
#include "obs/trace.h"

namespace rexp::obs {

namespace {

// ---- Async-signal-safe formatting into a caller-provided buffer. ----
// No allocation, no stdio, no locale. Each helper returns the number of
// bytes appended (never more than the remaining space).

size_t AppendRaw(char* buf, size_t cap, size_t pos, const char* s) {
  size_t n = std::strlen(s);
  if (pos + n > cap) n = cap - pos;
  std::memcpy(buf + pos, s, n);
  return n;
}

size_t AppendU64(char* buf, size_t cap, size_t pos, uint64_t v) {
  char digits[20];
  size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  if (pos + n > cap) return 0;
  for (size_t i = 0; i < n; ++i) buf[pos + i] = digits[n - 1 - i];
  return n;
}

// Writes `len` bytes to `fd`, retrying on EINTR / short writes.
void WriteAll(int fd, const char* buf, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::write(fd, buf + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Best-effort: a failing dump must not recurse into checks.
    }
    off += static_cast<size_t>(n);
  }
}

// A small append buffer flushed to the fd when full; keeps the number of
// write(2) calls per dump low without any allocation.
struct DumpBuffer {
  int fd;
  char data[4096];
  size_t pos = 0;

  explicit DumpBuffer(int fd_in) : fd(fd_in) {}
  ~DumpBuffer() { FlushBuf(); }

  void FlushBuf() {
    WriteAll(fd, data, pos);
    pos = 0;
  }
  void Raw(const char* s) {
    if (pos + std::strlen(s) > sizeof(data)) FlushBuf();
    pos += AppendRaw(data, sizeof(data), pos, s);
  }
  void U64(uint64_t v) {
    if (pos + 20 > sizeof(data)) FlushBuf();
    pos += AppendU64(data, sizeof(data), pos, v);
  }
};

size_t RoundUpPow2(size_t v) {
  size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* FlightOpName(FlightOp op) {
  switch (op) {
    case FlightOp::kInsert:
      return "insert";
    case FlightOp::kDelete:
      return "delete";
    case FlightOp::kUpdate:
      return "update";
    case FlightOp::kSearch:
      return "search";
    case FlightOp::kNn:
      return "nn";
    case FlightOp::kGroupUpdate:
      return "group_update";
    case FlightOp::kCommit:
      return "commit";
    case FlightOp::kBulkLoad:
      return "bulk_load";
    case FlightOp::kOther:
      break;
  }
  return "other";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      slots_(new Slot[capacity_]),
      epoch_(std::chrono::steady_clock::now()) {}

void FlightRecorder::Record(FlightOp op, uint64_t oid, double latency_us,
                            StatusCode code, uint64_t io) {
#ifdef REXP_NO_TELEMETRY
  (void)op;
  (void)oid;
  (void)latency_us;
  (void)code;
  (void)io;
#else
  if (!telemetry::Enabled()) return;
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & (capacity_ - 1)];
  // Invalidate first so a concurrent dump never pairs old fields with the
  // new ticket; the release store of the final ticket publishes the fields.
  slot.ticket.store(0, std::memory_order_relaxed);
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - epoch_)
                        .count();
  slot.oid = oid;
  slot.wall_ms = static_cast<uint32_t>(
      std::min<int64_t>(wall, std::numeric_limits<uint32_t>::max()));
  slot.latency_us = latency_us <= 0
                        ? 0u
                        : static_cast<uint32_t>(std::min(
                              latency_us,
                              static_cast<double>(
                                  std::numeric_limits<uint32_t>::max())));
  slot.io = static_cast<uint32_t>(
      std::min<uint64_t>(io, std::numeric_limits<uint32_t>::max()));
  slot.op = static_cast<uint8_t>(op);
  slot.status = static_cast<uint8_t>(code);
  slot.ticket.store(idx + 1, std::memory_order_release);
#endif
}

void FlightRecorder::DumpToFd(int fd, const char* reason) const {
  DumpBuffer out(fd);
  const uint64_t total = next_.load(std::memory_order_acquire);
  const uint64_t held = std::min<uint64_t>(total, capacity_);
  const uint64_t first = total - held;

  out.Raw("{\"v\":1,\"reason\":\"");
  out.Raw(reason == nullptr ? "unknown" : reason);
  out.Raw("\",\"pid\":");
  out.U64(static_cast<uint64_t>(::getpid()));
  out.Raw(",\"capacity\":");
  out.U64(capacity_);
  out.Raw(",\"recorded\":");
  out.U64(total);
  out.Raw(",\"dropped\":");
  out.U64(first);
  out.Raw(",\"events\":[");

  bool any = false;
  for (uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq & (capacity_ - 1)];
    if (slot.ticket.load(std::memory_order_acquire) != seq + 1) continue;
    // Copy fields, then re-validate: a writer lapping us mid-read leaves
    // the ticket changed and we drop the torn slot.
    const uint64_t oid = slot.oid;
    const uint32_t wall_ms = slot.wall_ms;
    const uint32_t latency_us = slot.latency_us;
    const uint32_t io = slot.io;
    const uint8_t op = slot.op;
    const uint8_t status = slot.status;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.ticket.load(std::memory_order_relaxed) != seq + 1) continue;

    if (any) out.Raw(",");
    any = true;
    out.Raw("{\"seq\":");
    out.U64(seq);
    out.Raw(",\"wall_ms\":");
    out.U64(wall_ms);
    out.Raw(",\"op\":\"");
    out.Raw(FlightOpName(static_cast<FlightOp>(op)));
    out.Raw("\",\"oid\":");
    out.U64(oid);
    out.Raw(",\"latency_us\":");
    out.U64(latency_us);
    out.Raw(",\"status\":");
    out.U64(status);
    out.Raw(",\"io\":");
    out.U64(io);
    out.Raw("}");
  }
  out.Raw("]}\n");
}

Status FlightRecorder::DumpToFile(const std::string& path,
                                  const char* reason) const {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("open flight-recorder dump '" + path + "'");
  }
  DumpToFd(fd, reason);
  ::close(fd);
  return Status::OK();
}

FlightRecorder& GlobalFlightRecorder() {
  static FlightRecorder* recorder = new FlightRecorder(1024);
  return *recorder;
}

namespace {

// Fatal-path state is deliberately mutable process globals: the signal
// handler can touch no locks and allocate nothing, so everything it
// reads is precomputed at install time (under g_install_once) and then
// only read. That install-once/read-after discipline — not a mutex — is
// the synchronization here.
//
// Dump path precomputed at install time so the signal path allocates
// nothing. Fixed-size: PATH_MAX-ish is overkill for our layouts.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
char g_dump_path[512] = {0};
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::terminate_handler g_prev_terminate = nullptr;
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::once_flag g_install_once;

void ResolveDumpPath() {
  const char* dir = std::getenv("REXP_FLIGHT_DIR");
  if (dir == nullptr || dir[0] == '\0') dir = ".";
  char pid_buf[24];
  size_t n = AppendU64(pid_buf, sizeof(pid_buf), 0,
                       static_cast<uint64_t>(::getpid()));
  pid_buf[n] = '\0';
  std::snprintf(g_dump_path, sizeof(g_dump_path),
                "%s/flight_recorder.%s.json", dir, pid_buf);
}

// Signal-safe: open(2) + DumpToFd only.
void DumpFromFatalPath(const char* reason) {
  if (g_dump_path[0] == '\0') return;
  int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  GlobalFlightRecorder().DumpToFd(fd, reason);
  ::close(fd);
}

void TerminateHandler() {
  DumpFromFatalPath("terminate");
  FlushAllTracers();  // Not a signal context; stdio is fine.
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

void CheckFailureDump() {
  DumpFromFatalPath("check_failure");
  FlushAllTracers();
}

void FatalSignalHandler(int sig) {
  DumpFromFatalPath(sig == SIGTERM ? "sigterm" : "sigint");
  // Restore default disposition and re-raise so the process still dies
  // with the original signal (exit status visible to the supervisor).
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void InstallFlightRecorderDumpHandlers() {
  std::call_once(g_install_once, [] {
    ResolveDumpPath();
    GlobalFlightRecorder();  // Construct outside any fatal path.
    g_prev_terminate = std::set_terminate(&TerminateHandler);
    rexp::internal::SetCheckFailureHook(&CheckFailureDump);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &FatalSignalHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
  });
}

std::string DumpFlightRecorderNow(const char* reason) {
  if (g_dump_path[0] == '\0') ResolveDumpPath();
  Status s = GlobalFlightRecorder().DumpToFile(g_dump_path, reason);
  if (!s.ok()) return std::string();
  return std::string(g_dump_path);
}

}  // namespace rexp::obs
