// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// obs::Monitor: the continuous profiler. A background thread snapshots a
// MetricsRegistry at a fixed interval, computes per-interval deltas and
// rates for every registered counter, re-derives per-interval latency
// percentiles from histogram bucket-count deltas, and appends one JSON
// line per sample to a time-series file under REXP_MONITOR_DIR. rexp_top
// tails that stream; inspect_index --watch and scripts/extract_results.py
// consume it offline.
//
// Stream schema (version 1), one object per line:
//   {"v":1,"type":"monitor_meta","pid":N,"interval_s":X,"name":"..."}
//   {"v":1,"type":"sample","seq":K,"wall_ms":N,"dt_s":X,
//    "counters":{name:total,...},         <- cumulative values
//    "rates":{name:per_second,...},       <- (delta / dt) per counter
//    "gauges":{name:x,...},
//    "hist":{name:{"count":n,"p50":x,"p90":x,"p99":x,"mean":x},...},
//    ["extra_key":<raw json>,...]}        <- AddJsonProvider output
// `hist` entries cover only the *interval*: count is the bucket-delta
// count and percentiles are interpolated from the delta buckets, so p99
// is the tail of the last dt seconds, not of the whole run. Histograms
// with no new samples in the interval are omitted from `hist`.
//
// Overhead: sampling cost is proportional to the number of bindings and
// entirely off the hot path — operations never wait on the monitor (the
// registry mutex is held only while copying values). At the default
// 100 ms interval against a fully-registered Tree the sampler uses well
// under 1% of one core; see DESIGN.md §7 for measured numbers.

#ifndef REXP_OBS_MONITOR_H_
#define REXP_OBS_MONITOR_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/registry.h"
#include "sched/mutex.h"

namespace rexp::obs {

// Interpolated quantile from one histogram's bucket counts (the same
// scheme Histogram::Percentile uses, over caller-supplied counts so the
// monitor can feed interval deltas). 0 when the counts are all zero.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& counts, double q);

class Monitor {
 public:
  struct Options {
    // Sampling period. The acceptance soak runs at the 100 ms default.
    double interval_s = 0.1;
    // Output directory; empty means $REXP_MONITOR_DIR, falling back to
    // the current directory.
    std::string dir;
    // Stream name baked into the file name and meta line.
    std::string name = "rexp";
  };

  // The registry must outlive the monitor. Components may keep
  // registering/unregistering while the monitor runs.
  Monitor(const MetricsRegistry* registry, Options options);

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Stops and joins the sampler thread, flushing the stream.
  ~Monitor();

  // Opens monitor_<name>_<pid>.jsonl in the output directory, writes the
  // meta line and the seq-0 baseline sample, and starts the sampler
  // thread. Fails if already started or the file cannot be opened.
  Status Start() EXCLUDES(mu_);

  // Stops the sampler thread (taking one final sample) and closes the
  // stream. Idempotent.
  void Stop() EXCLUDES(mu_);

  // Takes one sample immediately from the calling thread. Usable without
  // Start() after OpenStream(), and with the thread running (samples
  // serialize internally). Tests and --once tooling.
  void SampleNow() EXCLUDES(mu_);

  // Opens the stream and writes meta + baseline without starting the
  // thread; SampleNow() then drives sampling manually.
  Status OpenStream() EXCLUDES(mu_);

  // Registers an extra top-level key whose value is the provider's raw
  // JSON output (must be a complete JSON value). Used for the buffer
  // heatmap. Call before Start()/OpenStream().
  void AddJsonProvider(std::string key, std::function<std::string()> fn)
      EXCLUDES(mu_);

  // Full path of the stream file (valid after Start()/OpenStream()).
  const std::string& path() const { return path_; }

  uint64_t samples() const EXCLUDES(mu_) {
    sched::MutexLock lock(&mu_);
    return seq_;
  }

 private:
  void Run() EXCLUDES(mu_);
  void SampleLocked() REQUIRES(mu_);

  const MetricsRegistry* registry_;
  Options options_;
  // Written once in OpenStream(), before the sampler thread exists and
  // before SampleNow() is usable; read-only afterwards, so path() can
  // hand out a reference without the lock.
  std::string path_;

  // kMonitor is the top of the lock order: SampleLocked() snapshots the
  // registry (kRegistry) — and through its callbacks the component locks
  // below that — while holding mu_.
  mutable sched::Mutex mu_{sched::LockRank::kMonitor, "monitor"};
  sched::CondVar cv_;
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  bool running_ GUARDED_BY(mu_) = false;
  uint64_t seq_ GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point epoch_ GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_sample_ GUARDED_BY(mu_);
  std::vector<MetricSample> prev_counters_ GUARDED_BY(mu_);
  std::vector<HistogramSnapshot> prev_hists_ GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::function<std::string()>>>
      providers_ GUARDED_BY(mu_);
  std::thread thread_ GUARDED_BY(mu_);  // Joined outside mu_ after move-out.
};

}  // namespace rexp::obs

#endif  // REXP_OBS_MONITOR_H_
