// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Telemetry value types: counters, gauges, and fixed-bucket histograms
// with percentile readout. The index structures embed these directly in
// their stats structs, so the hot path is a plain member increment — no
// name lookup, no atomics (the index is single-writer by design; see
// PageFile). Naming happens only at snapshot time, via MetricsRegistry.
//
// Overhead model, by layer:
//   * Counters are one 64-bit add each and are always compiled in: the
//     paper's I/O counts are a functional metric (the experiment harness
//     depends on them), not optional telemetry.
//   * Histogram::Record and trace emission are telemetry proper. They are
//     gated by the cheap runtime flag (telemetry::Enabled(), one branch on
//     a global bool) and removed entirely — bodies compile to nothing —
//     when REXP_NO_TELEMETRY is defined (cmake -DREXP_NO_TELEMETRY=ON).
//   * Latency timing additionally pays a steady_clock read per measured
//     section; LatencyTimer skips the clock when telemetry is disabled.

#ifndef REXP_OBS_METRICS_H_
#define REXP_OBS_METRICS_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

namespace rexp::obs {

namespace telemetry {

#ifdef REXP_NO_TELEMETRY
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
inline bool g_enabled = true;

inline bool Enabled() { return g_enabled; }
inline void SetEnabled(bool on) { g_enabled = on; }
#endif

}  // namespace telemetry

// Monotone event counter. Plain uint64_t semantics; exists so stats
// structs read as self-describing and so the registry can take a stable
// pointer to the value.
struct Counter {
  uint64_t value = 0;

  void Inc(uint64_t n = 1) { value += n; }
  void Reset() { value = 0; }
};

// Fixed-bucket histogram. `bounds` are inclusive upper bounds of the
// first N buckets; one implicit overflow bucket catches everything above
// the last bound. Tracks count/sum/min/max exactly; percentiles are read
// out by linear interpolation within the containing bucket (the overflow
// bucket reports its lower edge, i.e. percentiles saturate at the last
// finite bound).
class Histogram {
 public:
  // A bound-less histogram still tracks count/sum/min/max (one overflow
  // bucket holds everything).
  Histogram() : counts_(1, 0) {}
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void Record(double v) {
#ifndef REXP_NO_TELEMETRY
    if (!telemetry::Enabled()) return;
    size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
               bounds_.begin();
    // upper_bound treats bounds as exclusive; make them inclusive.
    if (b > 0 && bounds_[b - 1] == v) --b;
    ++counts_[b];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
#else
    (void)v;
#endif
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }

  // Value at quantile q in [0, 1], interpolated within the bucket that
  // holds the q-th recorded sample. 0 when empty.
  double Percentile(double q) const {
    if (count_ == 0) return 0;
    if (bounds_.empty()) return std::clamp(mean(), min(), max());
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(count_);
    uint64_t seen = 0;
    for (size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      double lo = b == 0 ? std::min(min(), bounds_[0]) : bounds_[b - 1];
      double hi = b < bounds_.size() ? bounds_[b] : bounds_.back();
      seen += counts_[b];
      if (static_cast<double>(seen) >= rank) {
        double frac = 1.0 - (static_cast<double>(seen) - rank) /
                                static_cast<double>(counts_[b]);
        double v = lo + (hi - lo) * frac;
        return std::clamp(v, min(), max());
      }
    }
    return max();
  }

  void Reset() {
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// `n` bucket bounds start, start*factor, start*factor^2, ...
inline std::vector<double> ExponentialBounds(double start, double factor,
                                             int n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

// Microsecond latency buckets: 1 µs .. ~8.4 s in powers of two.
inline std::vector<double> LatencyBoundsUs() {
  return ExponentialBounds(1.0, 2.0, 24);
}

// Per-operation I/O-count buckets: 1 .. 4096 pages in powers of two
// (bucket 0 additionally catches buffer-resident operations with 0 I/Os).
inline std::vector<double> IoCountBounds() {
  std::vector<double> bounds = ExponentialBounds(1.0, 2.0, 13);
  bounds.insert(bounds.begin(), 0.0);
  return bounds;
}

// Measures the wall time of a scope into a histogram, in microseconds.
// Reads the clock only when telemetry is enabled at construction.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* h)
      : h_(telemetry::Enabled() ? h : nullptr) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  ~LatencyTimer() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->Record(static_cast<double>(ns) * 1e-3);
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rexp::obs

#endif  // REXP_OBS_METRICS_H_
