// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Telemetry value types: counters, gauges, and fixed-bucket histograms
// with percentile readout. The index structures embed these directly in
// their stats structs, so the hot path is a plain member increment — no
// name lookup. Naming happens only at snapshot time, via MetricsRegistry.
//
// Overhead model, by layer:
//   * Counters are one 64-bit add each (a relaxed atomic add where the
//     owning stats struct is shared across reader threads) and are always
//     compiled in: the paper's I/O counts are a functional metric (the
//     experiment harness depends on them), not optional telemetry.
//   * Histogram::Record and trace emission are telemetry proper. They are
//     gated by the cheap runtime flag (telemetry::Enabled(), one branch on
//     a global flag) and removed entirely — bodies compile to nothing —
//     when REXP_NO_TELEMETRY is defined (cmake -DREXP_NO_TELEMETRY=ON).
//     When enabled, Record additionally takes the histogram's internal
//     mutex so concurrent reader epochs stay race-free.
//   * Latency timing additionally pays a steady_clock read per measured
//     section; LatencyTimer skips the clock when telemetry is disabled.

#ifndef REXP_OBS_METRICS_H_
#define REXP_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "sched/mutex.h"

namespace rexp::obs {

namespace telemetry {

#ifdef REXP_NO_TELEMETRY
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
// Process-wide runtime switch; intentionally a mutable global (one branch
// on the hot path is the whole design).
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
inline std::atomic<bool> g_enabled{true};

inline bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
inline void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}
#endif

}  // namespace telemetry

// Monotone event counter. Plain uint64_t semantics; exists so stats
// structs read as self-describing and so the registry can take a stable
// pointer to the value.
struct Counter {
  uint64_t value = 0;

  void Inc(uint64_t n = 1) { value += n; }
  void Reset() { value = 0; }
};

// Fixed-bucket histogram. `bounds` are inclusive upper bounds of the
// first N buckets; one implicit overflow bucket catches everything above
// the last bound. Tracks count/sum/min/max exactly; percentiles are read
// out by linear interpolation within the containing bucket (the overflow
// bucket reports its lower edge, i.e. percentiles saturate at the last
// finite bound).
//
// Thread safety: Record and every reader serialize on an internal mutex,
// so histograms embedded in stats structs stay consistent when shared
// tree epochs record from several reader threads (DESIGN.md §8). The
// lock is taken after the telemetry-enabled branch, so a disabled
// histogram still costs only the branch.
class Histogram {
 public:
  // A bound-less histogram still tracks count/sum/min/max (one overflow
  // bucket holds everything).
  Histogram() : counts_(1, 0) {}
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  Histogram(const Histogram& other) { *this = other; }
  // NO_THREAD_SAFETY_ANALYSIS: address-ordered dual acquisition of two
  // peer locks of equal rank — lower address first, matching the LockRank
  // equal-rank rule — which the static analysis cannot express.
  Histogram& operator=(const Histogram& other) NO_THREAD_SAFETY_ANALYSIS {
    if (this == &other) return *this;
    sched::Mutex* first = &mu_;
    sched::Mutex* second = &other.mu_;
    if (second < first) std::swap(first, second);
    sched::MutexLock lock_first(first);
    sched::MutexLock lock_second(second);
    bounds_ = other.bounds_;
    counts_ = other.counts_;
    count_ = other.count_;
    sum_ = other.sum_;
    min_ = other.min_;
    max_ = other.max_;
    return *this;
  }

  void Record(double v) {
#ifndef REXP_NO_TELEMETRY
    if (!telemetry::Enabled()) return;
    sched::MutexLock lock(&mu_);
    size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
               bounds_.begin();
    // upper_bound treats bounds as exclusive; make them inclusive.
    if (b > 0 && bounds_[b - 1] == v) --b;
    ++counts_[b];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
#else
    (void)v;
#endif
  }

  uint64_t count() const {
    sched::MutexLock lock(&mu_);
    return count_;
  }
  double sum() const {
    sched::MutexLock lock(&mu_);
    return sum_;
  }
  double min() const {
    sched::MutexLock lock(&mu_);
    return MinLocked();
  }
  double max() const {
    sched::MutexLock lock(&mu_);
    return MaxLocked();
  }
  double mean() const {
    sched::MutexLock lock(&mu_);
    return MeanLocked();
  }

  // Value at quantile q in [0, 1], interpolated within the bucket that
  // holds the q-th recorded sample. 0 when empty.
  double Percentile(double q) const {
    sched::MutexLock lock(&mu_);
    if (count_ == 0) return 0;
    if (bounds_.empty())
      return std::clamp(MeanLocked(), MinLocked(), MaxLocked());
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(count_);
    uint64_t seen = 0;
    for (size_t b = 0; b < counts_.size(); ++b) {
      if (counts_[b] == 0) continue;
      double lo = b == 0 ? std::min(MinLocked(), bounds_[0]) : bounds_[b - 1];
      double hi = b < bounds_.size() ? bounds_[b] : bounds_.back();
      seen += counts_[b];
      if (static_cast<double>(seen) >= rank) {
        double frac = 1.0 - (static_cast<double>(seen) - rank) /
                                static_cast<double>(counts_[b]);
        double v = lo + (hi - lo) * frac;
        return std::clamp(v, MinLocked(), MaxLocked());
      }
    }
    return MaxLocked();
  }

  void Reset() {
    sched::MutexLock lock(&mu_);
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }

  // Snapshots (copies): consistent even while other threads record.
  std::vector<double> bounds() const {
    sched::MutexLock lock(&mu_);
    return bounds_;
  }
  std::vector<uint64_t> bucket_counts() const {
    sched::MutexLock lock(&mu_);
    return counts_;
  }

 private:
  double MinLocked() const REQUIRES(mu_) { return count_ ? min_ : 0; }
  double MaxLocked() const REQUIRES(mu_) { return count_ ? max_ : 0; }
  double MeanLocked() const REQUIRES(mu_) {
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }

  mutable sched::Mutex mu_{sched::LockRank::kLeaf, "histogram"};
  std::vector<double> bounds_ GUARDED_BY(mu_);
  std::vector<uint64_t> counts_ GUARDED_BY(mu_);
  uint64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0;
  double min_ GUARDED_BY(mu_) = std::numeric_limits<double>::infinity();
  double max_ GUARDED_BY(mu_) = -std::numeric_limits<double>::infinity();
};

// `n` bucket bounds start, start*factor, start*factor^2, ...
inline std::vector<double> ExponentialBounds(double start, double factor,
                                             int n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double v = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

// Microsecond latency buckets: 1 µs .. ~8.4 s in powers of two.
inline std::vector<double> LatencyBoundsUs() {
  return ExponentialBounds(1.0, 2.0, 24);
}

// Per-operation I/O-count buckets: 1 .. 4096 pages in powers of two
// (bucket 0 additionally catches buffer-resident operations with 0 I/Os).
inline std::vector<double> IoCountBounds() {
  std::vector<double> bounds = ExponentialBounds(1.0, 2.0, 13);
  bounds.insert(bounds.begin(), 0.0);
  return bounds;
}

// Measures the wall time of a scope into a histogram, in microseconds.
// Reads the clock only when telemetry is enabled at construction.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* h)
      : h_(telemetry::Enabled() ? h : nullptr) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  // Microseconds elapsed so far; 0 when telemetry was disabled at
  // construction (no clock was read). Lets callers reuse the one timer
  // for secondary sinks (the flight recorder) without a second clock pair.
  double ElapsedUs() const {
    if (h_ == nullptr) return 0;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    return static_cast<double>(ns) * 1e-3;
  }

  ~LatencyTimer() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->Record(static_cast<double>(ns) * 1e-3);
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rexp::obs

#endif  // REXP_OBS_METRICS_H_
