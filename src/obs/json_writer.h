// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Minimal JSON emitter used by the telemetry snapshot, the per-operation
// trace stream, and the benchmark export — everything machine-readable
// the repo writes. Append-only builder: the caller opens/closes objects
// and arrays in order; commas and key quoting are handled here. Doubles
// are written with shortest round-trip formatting (std::to_chars), so
// re-ingested numbers compare exactly. Non-finite doubles (never produced
// by healthy metrics, but possible in degenerate gauges) are emitted as
// null, keeping the output standard JSON.

#ifndef REXP_OBS_JSON_WRITER_H_
#define REXP_OBS_JSON_WRITER_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"

namespace rexp::obs {

class JsonWriter {
 public:
  JsonWriter() { stack_.push_back(Frame{kTop, true}); }

  JsonWriter& BeginObject() {
    Separate();
    out_ += '{';
    stack_.push_back(Frame{kObject, true});
    return *this;
  }
  JsonWriter& EndObject() {
    REXP_CHECK(stack_.back().kind == kObject);
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Separate();
    out_ += '[';
    stack_.push_back(Frame{kArray, true});
    return *this;
  }
  JsonWriter& EndArray() {
    REXP_CHECK(stack_.back().kind == kArray);
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  // Emits the key of the next object member.
  JsonWriter& Key(const char* key) {
    REXP_CHECK(stack_.back().kind == kObject);
    Separate();
    AppendQuoted(key);
    out_ += ':';
    have_key_ = true;
    return *this;
  }

  JsonWriter& Value(const char* s) {
    Separate();
    AppendQuoted(s);
    return *this;
  }
  JsonWriter& Value(const std::string& s) { return Value(s.c_str()); }
  JsonWriter& Value(bool b) {
    Separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& Value(uint64_t v) {
    Separate();
    AppendNumber(v);
    return *this;
  }
  JsonWriter& Value(int64_t v) {
    Separate();
    char buf[24];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    REXP_CHECK(ec == std::errc());
    out_.append(buf, ptr);
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(double v) {
    Separate();
    AppendNumber(v);
    return *this;
  }

  // Splices a pre-rendered JSON value verbatim (e.g. a nested snapshot).
  JsonWriter& RawValue(const std::string& json) {
    Separate();
    out_ += json;
    return *this;
  }

  // Shorthand for Key(k).Value(v).
  template <typename T>
  JsonWriter& KV(const char* key, T v) {
    Key(key);
    return Value(v);
  }

  // The finished document. Valid once every BeginX has been closed.
  const std::string& str() const {
    REXP_CHECK(stack_.size() == 1);
    return out_;
  }

 private:
  enum Kind { kTop, kObject, kArray };
  struct Frame {
    Kind kind;
    bool first;
  };

  // Writes the separator a new element needs in the current context.
  void Separate() {
    Frame& top = stack_.back();
    if (have_key_) {
      // The value completing a key:value pair; the comma (if any) was
      // written before the key.
      have_key_ = false;
      return;
    }
    if (!top.first) out_ += ',';
    top.first = false;
  }

  void AppendQuoted(const char* s) {
    out_ += '"';
    for (; *s != '\0'; ++s) {
      unsigned char c = static_cast<unsigned char>(*s);
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += static_cast<char>(c);
          }
      }
    }
    out_ += '"';
  }

  void AppendNumber(uint64_t v) {
    char buf[24];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    REXP_CHECK(ec == std::errc());
    out_.append(buf, ptr);
  }

  void AppendNumber(double v) {
    if (!std::isfinite(v)) {
      out_ += "null";
      return;
    }
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    REXP_CHECK(ec == std::errc());
    out_.append(buf, ptr);
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool have_key_ = false;
};

}  // namespace rexp::obs

#endif  // REXP_OBS_JSON_WRITER_H_
