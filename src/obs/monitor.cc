// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.

#include "obs/monitor.h"

#include <algorithm>
#include <cstdlib>

#include <unistd.h>

#include "common/check.h"
#include "obs/json_writer.h"

namespace rexp::obs {

double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi =
        b < bounds.size() ? bounds[b] : (bounds.empty() ? 0.0 : bounds.back());
    seen += counts[b];
    if (static_cast<double>(seen) >= rank) {
      const double frac = 1.0 - (static_cast<double>(seen) - rank) /
                                    static_cast<double>(counts[b]);
      return lo + (hi - lo) * frac;
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Monitor::Monitor(const MetricsRegistry* registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  REXP_CHECK(registry_ != nullptr);
  if (options_.interval_s <= 0) options_.interval_s = 0.1;
  if (options_.dir.empty()) {
    const char* env = std::getenv("REXP_MONITOR_DIR");
    options_.dir = (env != nullptr && env[0] != '\0') ? env : ".";
  }
}

Monitor::~Monitor() { Stop(); }

Status Monitor::OpenStream() {
  sched::MutexLock lock(&mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("monitor stream already open");
  }
  path_ = options_.dir + "/monitor_" + options_.name + "_" +
          std::to_string(::getpid()) + ".jsonl";
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("open monitor stream '" + path_ + "'");
  }
  file_ = f;

  JsonWriter meta;
  meta.BeginObject();
  meta.KV("v", 1);
  meta.Key("type").Value("monitor_meta");
  meta.KV("pid", static_cast<int64_t>(::getpid()));
  meta.KV("interval_s", options_.interval_s);
  meta.Key("name").Value(options_.name);
  meta.EndObject();
  std::fputs(meta.str().c_str(), file_);
  std::fputc('\n', file_);

  epoch_ = std::chrono::steady_clock::now();
  last_sample_ = epoch_;
  seq_ = 0;
  prev_counters_.clear();
  prev_hists_.clear();
  SampleLocked();  // seq-0 baseline.
  return Status::OK();
}

Status Monitor::Start() {
  {
    sched::MutexLock lock(&mu_);
    if (running_) return Status::FailedPrecondition("monitor already running");
  }
  REXP_RETURN_IF_ERROR(OpenStream());
  sched::MutexLock lock(&mu_);
  running_ = true;
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Monitor::Stop() {
  std::thread to_join;
  {
    sched::MutexLock lock(&mu_);
    if (running_) {
      running_ = false;
      cv_.NotifyAll();
      to_join = std::move(thread_);
    }
  }
  if (to_join.joinable()) to_join.join();
  sched::MutexLock lock(&mu_);
  if (file_ != nullptr) {
    SampleLocked();  // Final sample so short runs still show activity.
    std::fclose(file_);
    file_ = nullptr;
  }
}

void Monitor::SampleNow() {
  sched::MutexLock lock(&mu_);
  if (file_ == nullptr) return;
  SampleLocked();
}

void Monitor::AddJsonProvider(std::string key,
                              std::function<std::string()> fn) {
  sched::MutexLock lock(&mu_);
  providers_.emplace_back(std::move(key), std::move(fn));
}

void Monitor::Run() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.interval_s));
  sched::MutexLock lock(&mu_);
  while (running_) {
    // Timed wait doubles as the stop signal: Stop() notifies under mu_.
    if (cv_.WaitFor(mu_, interval,
                    [this]() REQUIRES(mu_) { return !running_; })) {
      break;
    }
    if (file_ != nullptr) SampleLocked();
  }
}

void Monitor::SampleLocked() {
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now - last_sample_).count();
  const auto wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - epoch_)
          .count();

  std::vector<MetricSample> counters = registry_->Snapshot();
  std::vector<HistogramSnapshot> hists = registry_->SnapshotHistograms();

  JsonWriter w;
  w.BeginObject();
  w.KV("v", 1);
  w.Key("type").Value("sample");
  w.KV("seq", seq_);
  w.KV("wall_ms", static_cast<int64_t>(wall_ms));
  w.KV("dt_s", dt);

  w.Key("counters").BeginObject();
  for (const MetricSample& s : counters) {
    if (s.is_counter) w.KV(s.name.c_str(), s.value);
  }
  w.EndObject();

  // Rates: delta / dt per counter, matched by name against the previous
  // sample (bindings can come and go between samples as components
  // register/unregister). seq 0 has no previous sample -> empty.
  w.Key("rates").BeginObject();
  if (dt > 0 && !prev_counters_.empty()) {
    for (const MetricSample& s : counters) {
      if (!s.is_counter) continue;
      for (const MetricSample& p : prev_counters_) {
        if (p.is_counter && p.name == s.name) {
          // A counter below its previous sample was re-registered (its
          // owner cycled) or reset; rating the difference would emit a
          // huge negative spike. Rate it as if it restarted from zero.
          const double d = s.value >= p.value ? s.value - p.value : s.value;
          w.KV(s.name.c_str(), d / dt);
          break;
        }
      }
    }
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const MetricSample& s : counters) {
    if (!s.is_counter) w.KV(s.name.c_str(), s.value);
  }
  w.EndObject();

  // Interval histograms: percentiles over this interval's bucket deltas.
  w.Key("hist").BeginObject();
  for (const HistogramSnapshot& h : hists) {
    const HistogramSnapshot* prev = nullptr;
    for (const HistogramSnapshot& p : prev_hists_) {
      if (p.name == h.name) {
        prev = &p;
        break;
      }
    }
    std::vector<uint64_t> delta = h.bucket_counts;
    uint64_t delta_count = h.count;
    double delta_sum = h.sum;
    if (prev != nullptr && prev->bucket_counts.size() == delta.size()) {
      // A histogram Reset() between samples shows up as a cumulative
      // count, sum, or bucket going backwards — possibly after regrowing
      // past the previous count, so the count alone cannot be trusted.
      // Subtracting across a reset would emit clamped-garbage buckets
      // and a negative mean; treat the cumulative state as this
      // interval's delta instead (the interval since the reset).
      bool regressed = h.count < prev->count || h.sum < prev->sum;
      for (size_t i = 0; !regressed && i < delta.size(); ++i) {
        if (h.bucket_counts[i] < prev->bucket_counts[i]) regressed = true;
      }
      if (!regressed) {
        for (size_t i = 0; i < delta.size(); ++i) {
          delta[i] -= prev->bucket_counts[i];
        }
        delta_count = h.count - prev->count;
        delta_sum = h.sum - prev->sum;
      }
    }
    // A quiet interval (or an all-zero histogram) contributes no "hist"
    // entry at all rather than a zero-count object with NaN percentiles.
    if (delta_count == 0) continue;
    w.Key(h.name.c_str()).BeginObject();
    w.KV("count", delta_count);
    w.KV("mean", delta_sum / static_cast<double>(delta_count));
    w.KV("p50", PercentileFromBuckets(h.bounds, delta, 0.50));
    w.KV("p90", PercentileFromBuckets(h.bounds, delta, 0.90));
    w.KV("p99", PercentileFromBuckets(h.bounds, delta, 0.99));
    w.EndObject();
  }
  w.EndObject();

  for (const auto& [key, fn] : providers_) {
    w.Key(key.c_str()).RawValue(fn());
  }
  w.EndObject();

  std::fputs(w.str().c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);

  prev_counters_ = std::move(counters);
  prev_hists_ = std::move(hists);
  last_sample_ = now;
  ++seq_;
}

}  // namespace rexp::obs
