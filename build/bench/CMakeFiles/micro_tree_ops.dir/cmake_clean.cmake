file(REMOVE_RECURSE
  "CMakeFiles/micro_tree_ops.dir/micro_tree_ops.cc.o"
  "CMakeFiles/micro_tree_ops.dir/micro_tree_ops.cc.o.d"
  "micro_tree_ops"
  "micro_tree_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tree_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
