file(REMOVE_RECURSE
  "CMakeFiles/fig12_expd_tpbr.dir/fig12_expd_tpbr.cc.o"
  "CMakeFiles/fig12_expd_tpbr.dir/fig12_expd_tpbr.cc.o.d"
  "fig12_expd_tpbr"
  "fig12_expd_tpbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_expd_tpbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
