# Empty compiler generated dependencies file for fig12_expd_tpbr.
# This may be replaced when dependencies are built.
