file(REMOVE_RECURSE
  "CMakeFiles/micro_tpbr.dir/micro_tpbr.cc.o"
  "CMakeFiles/micro_tpbr.dir/micro_tpbr.cc.o.d"
  "micro_tpbr"
  "micro_tpbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tpbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
