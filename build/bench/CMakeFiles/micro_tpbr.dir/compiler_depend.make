# Empty compiler generated dependencies file for micro_tpbr.
# This may be replaced when dependencies are built.
