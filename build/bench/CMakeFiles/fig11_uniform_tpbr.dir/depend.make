# Empty dependencies file for fig11_uniform_tpbr.
# This may be replaced when dependencies are built.
