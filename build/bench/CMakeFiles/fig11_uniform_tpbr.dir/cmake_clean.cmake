file(REMOVE_RECURSE
  "CMakeFiles/fig11_uniform_tpbr.dir/fig11_uniform_tpbr.cc.o"
  "CMakeFiles/fig11_uniform_tpbr.dir/fig11_uniform_tpbr.cc.o.d"
  "fig11_uniform_tpbr"
  "fig11_uniform_tpbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_uniform_tpbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
