file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_16_newob.dir/fig14_15_16_newob.cc.o"
  "CMakeFiles/fig14_15_16_newob.dir/fig14_15_16_newob.cc.o.d"
  "fig14_15_16_newob"
  "fig14_15_16_newob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_16_newob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
