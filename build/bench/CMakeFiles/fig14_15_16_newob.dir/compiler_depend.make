# Empty compiler generated dependencies file for fig14_15_16_newob.
# This may be replaced when dependencies are built.
