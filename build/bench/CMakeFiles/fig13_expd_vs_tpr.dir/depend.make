# Empty dependencies file for fig13_expd_vs_tpr.
# This may be replaced when dependencies are built.
