file(REMOVE_RECURSE
  "CMakeFiles/fig13_expd_vs_tpr.dir/fig13_expd_vs_tpr.cc.o"
  "CMakeFiles/fig13_expd_vs_tpr.dir/fig13_expd_vs_tpr.cc.o.d"
  "fig13_expd_vs_tpr"
  "fig13_expd_vs_tpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_expd_vs_tpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
