# Empty dependencies file for fig09_expt_flavors.
# This may be replaced when dependencies are built.
