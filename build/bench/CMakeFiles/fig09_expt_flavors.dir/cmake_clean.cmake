file(REMOVE_RECURSE
  "CMakeFiles/fig09_expt_flavors.dir/fig09_expt_flavors.cc.o"
  "CMakeFiles/fig09_expt_flavors.dir/fig09_expt_flavors.cc.o.d"
  "fig09_expt_flavors"
  "fig09_expt_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_expt_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
