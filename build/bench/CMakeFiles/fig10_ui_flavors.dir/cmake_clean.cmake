file(REMOVE_RECURSE
  "CMakeFiles/fig10_ui_flavors.dir/fig10_ui_flavors.cc.o"
  "CMakeFiles/fig10_ui_flavors.dir/fig10_ui_flavors.cc.o.d"
  "fig10_ui_flavors"
  "fig10_ui_flavors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ui_flavors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
