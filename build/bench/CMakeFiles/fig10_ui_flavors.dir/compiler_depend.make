# Empty compiler generated dependencies file for fig10_ui_flavors.
# This may be replaced when dependencies are built.
