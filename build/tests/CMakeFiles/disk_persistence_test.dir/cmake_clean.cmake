file(REMOVE_RECURSE
  "CMakeFiles/disk_persistence_test.dir/disk_persistence_test.cc.o"
  "CMakeFiles/disk_persistence_test.dir/disk_persistence_test.cc.o.d"
  "disk_persistence_test"
  "disk_persistence_test.pdb"
  "disk_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
