# Empty compiler generated dependencies file for disk_persistence_test.
# This may be replaced when dependencies are built.
