# Empty compiler generated dependencies file for paper_scenario_test.
# This may be replaced when dependencies are built.
