# Empty compiler generated dependencies file for tpbr_test.
# This may be replaced when dependencies are built.
