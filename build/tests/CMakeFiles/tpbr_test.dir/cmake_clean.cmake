file(REMOVE_RECURSE
  "CMakeFiles/tpbr_test.dir/tpbr_test.cc.o"
  "CMakeFiles/tpbr_test.dir/tpbr_test.cc.o.d"
  "tpbr_test"
  "tpbr_test.pdb"
  "tpbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
