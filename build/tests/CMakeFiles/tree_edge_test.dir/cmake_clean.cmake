file(REMOVE_RECURSE
  "CMakeFiles/tree_edge_test.dir/tree_edge_test.cc.o"
  "CMakeFiles/tree_edge_test.dir/tree_edge_test.cc.o.d"
  "tree_edge_test"
  "tree_edge_test.pdb"
  "tree_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
