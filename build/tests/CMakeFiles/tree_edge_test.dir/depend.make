# Empty dependencies file for tree_edge_test.
# This may be replaced when dependencies are built.
