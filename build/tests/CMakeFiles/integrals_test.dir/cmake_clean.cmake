file(REMOVE_RECURSE
  "CMakeFiles/integrals_test.dir/integrals_test.cc.o"
  "CMakeFiles/integrals_test.dir/integrals_test.cc.o.d"
  "integrals_test"
  "integrals_test.pdb"
  "integrals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
