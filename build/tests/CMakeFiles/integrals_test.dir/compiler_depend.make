# Empty compiler generated dependencies file for integrals_test.
# This may be replaced when dependencies are built.
