file(REMOVE_RECURSE
  "CMakeFiles/tpbr_property_test.dir/tpbr_property_test.cc.o"
  "CMakeFiles/tpbr_property_test.dir/tpbr_property_test.cc.o.d"
  "tpbr_property_test"
  "tpbr_property_test.pdb"
  "tpbr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpbr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
