# Empty dependencies file for tpbr_property_test.
# This may be replaced when dependencies are built.
