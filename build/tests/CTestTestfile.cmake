# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/hull_test[1]_include.cmake")
include("/root/repo/build/tests/tpbr_test[1]_include.cmake")
include("/root/repo/build/tests/integrals_test[1]_include.cmake")
include("/root/repo/build/tests/intersect_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/tree_property_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/horizon_test[1]_include.cmake")
include("/root/repo/build/tests/tree_edge_test[1]_include.cmake")
include("/root/repo/build/tests/paper_scenario_test[1]_include.cmake")
include("/root/repo/build/tests/disk_persistence_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/tpbr_property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
