# Empty dependencies file for location_game.
# This may be replaced when dependencies are built.
