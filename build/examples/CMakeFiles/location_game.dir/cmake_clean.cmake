file(REMOVE_RECURSE
  "CMakeFiles/location_game.dir/location_game.cc.o"
  "CMakeFiles/location_game.dir/location_game.cc.o.d"
  "location_game"
  "location_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
