
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/rexp.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/rexp.dir/btree/btree.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/rexp.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/rexp.dir/harness/experiment.cc.o.d"
  "/root/repo/src/hull/convex_hull.cc" "src/CMakeFiles/rexp.dir/hull/convex_hull.cc.o" "gcc" "src/CMakeFiles/rexp.dir/hull/convex_hull.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/rexp.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/rexp.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/rexp.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/rexp.dir/storage/page_file.cc.o.d"
  "/root/repo/src/tpbr/integrals.cc" "src/CMakeFiles/rexp.dir/tpbr/integrals.cc.o" "gcc" "src/CMakeFiles/rexp.dir/tpbr/integrals.cc.o.d"
  "/root/repo/src/tpbr/tpbr_compute.cc" "src/CMakeFiles/rexp.dir/tpbr/tpbr_compute.cc.o" "gcc" "src/CMakeFiles/rexp.dir/tpbr/tpbr_compute.cc.o.d"
  "/root/repo/src/tree/node.cc" "src/CMakeFiles/rexp.dir/tree/node.cc.o" "gcc" "src/CMakeFiles/rexp.dir/tree/node.cc.o.d"
  "/root/repo/src/tree/stats.cc" "src/CMakeFiles/rexp.dir/tree/stats.cc.o" "gcc" "src/CMakeFiles/rexp.dir/tree/stats.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/CMakeFiles/rexp.dir/tree/tree.cc.o" "gcc" "src/CMakeFiles/rexp.dir/tree/tree.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/rexp.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/rexp.dir/workload/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
