file(REMOVE_RECURSE
  "CMakeFiles/rexp.dir/btree/btree.cc.o"
  "CMakeFiles/rexp.dir/btree/btree.cc.o.d"
  "CMakeFiles/rexp.dir/harness/experiment.cc.o"
  "CMakeFiles/rexp.dir/harness/experiment.cc.o.d"
  "CMakeFiles/rexp.dir/hull/convex_hull.cc.o"
  "CMakeFiles/rexp.dir/hull/convex_hull.cc.o.d"
  "CMakeFiles/rexp.dir/storage/buffer_manager.cc.o"
  "CMakeFiles/rexp.dir/storage/buffer_manager.cc.o.d"
  "CMakeFiles/rexp.dir/storage/page_file.cc.o"
  "CMakeFiles/rexp.dir/storage/page_file.cc.o.d"
  "CMakeFiles/rexp.dir/tpbr/integrals.cc.o"
  "CMakeFiles/rexp.dir/tpbr/integrals.cc.o.d"
  "CMakeFiles/rexp.dir/tpbr/tpbr_compute.cc.o"
  "CMakeFiles/rexp.dir/tpbr/tpbr_compute.cc.o.d"
  "CMakeFiles/rexp.dir/tree/node.cc.o"
  "CMakeFiles/rexp.dir/tree/node.cc.o.d"
  "CMakeFiles/rexp.dir/tree/stats.cc.o"
  "CMakeFiles/rexp.dir/tree/stats.cc.o.d"
  "CMakeFiles/rexp.dir/tree/tree.cc.o"
  "CMakeFiles/rexp.dir/tree/tree.cc.o.d"
  "CMakeFiles/rexp.dir/workload/generator.cc.o"
  "CMakeFiles/rexp.dir/workload/generator.cc.o.d"
  "librexp.a"
  "librexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
