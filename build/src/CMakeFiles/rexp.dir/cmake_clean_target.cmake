file(REMOVE_RECURSE
  "librexp.a"
)
