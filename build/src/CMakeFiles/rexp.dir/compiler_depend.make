# Empty compiler generated dependencies file for rexp.
# This may be replaced when dependencies are built.
