file(REMOVE_RECURSE
  "CMakeFiles/inspect_index.dir/inspect_index.cc.o"
  "CMakeFiles/inspect_index.dir/inspect_index.cc.o.d"
  "inspect_index"
  "inspect_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
