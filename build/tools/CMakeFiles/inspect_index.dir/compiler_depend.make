# Empty compiler generated dependencies file for inspect_index.
# This may be replaced when dependencies are built.
