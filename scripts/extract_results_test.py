#!/usr/bin/env python3
"""Unit check for extract_results.py's BENCH_*.json ingestion.

Exercises the multi-partition shape BENCH_partition.json introduced:
runs without a "series" key, with per-class list-of-dict sub-tables
that must flatten into <bench>_runs_<key>.csv rather than being
silently dropped. Run as a ctest (no third-party dependencies):

    python3 scripts/extract_results_test.py
"""

import csv
import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "extract_results.py")

DOC = {
    "bench": "partition",
    "scale": 0.02,
    "tables": [{
        "title": "Partitioned search I/O per query",
        "x_label": "K",
        "series": ["fig13", "bimodal"],
        "rows": [
            {"x": 0, "values": [5.2, 9.8]},
            {"x": 2, "values": [3.4, 6.5]},
        ],
    }],
    "runs": [
        {
            "workload": "bimodal", "variant": "single", "k": 0,
            "search_io": 9.8, "update_io": 1.7, "queries": 200,
        },
        {
            "workload": "bimodal", "variant": "part-K2", "k": 2,
            "search_io": 6.5, "update_io": 1.8, "queries": 200,
            "migrations": 5245,
            "classes": [
                {"class": 0, "upper": 0.4, "population": 900,
                 "pages": 40, "io": 1000},
                {"class": 1, "upper": None, "population": 1100,
                 "pages": 50, "io": 1200},
            ],
        },
    ],
    "gates": [
        {"name": "bimodal_k2_search_io_ratio", "value": 0.66,
         "max": 0.999},
    ],
}


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.reader(f))


def main():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "BENCH_partition.json")
        out = os.path.join(tmp, "csv")
        with open(src, "w") as f:
            json.dump(DOC, f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, src, out],
            capture_output=True, text=True)
        if proc.returncode != 0:
            print(proc.stdout + proc.stderr)
            sys.exit(f"extract_results.py exited {proc.returncode}")

        # The printed table survives as its own CSV.
        table_csv = os.path.join(
            out, "partitioned_search_i_o_per_query.csv")
        if not os.path.isfile(table_csv):
            failures.append(f"missing table CSV {table_csv}")

        # The per-run CSV covers every scalar key even though the runs
        # carry no "series" column.
        rows = read_csv(os.path.join(out, "partition_runs.csv"))
        header = rows[0]
        for key in ("workload", "variant", "k", "search_io",
                    "migrations"):
            if key not in header:
                failures.append(f"partition_runs.csv misses '{key}'")
        if "series" in header:
            failures.append("partition_runs.csv invented a 'series' "
                            "column")
        if len(rows) != 3:
            failures.append(f"partition_runs.csv has {len(rows) - 1} "
                            f"rows, want 2")

        # The list-of-dict sub-table flattens one row per class, carrying
        # the parent run's scalar columns for context.
        sub = os.path.join(out, "partition_runs_classes.csv")
        if not os.path.isfile(sub):
            failures.append(f"missing sub-table {sub} — per-class data "
                            f"was dropped")
        else:
            rows = read_csv(sub)
            header = rows[0]
            for key in ("workload", "variant", "class", "population",
                        "pages"):
                if key not in header:
                    failures.append(
                        f"partition_runs_classes.csv misses '{key}'")
            if len(rows) != 3:
                failures.append(
                    f"partition_runs_classes.csv has {len(rows) - 1} "
                    f"rows, want 2")
            else:
                by = dict(zip(header, rows[1]))
                if by.get("workload") != "bimodal":
                    failures.append("class row lost its parent workload")
                if by.get("population") != "900":
                    failures.append(
                        f"class 0 population {by.get('population')!r}, "
                        f"want '900'")

    if failures:
        for f in failures:
            print(f"FAIL {f}")
        sys.exit(1)
    print("extract_results_test: OK")


if __name__ == "__main__":
    main()
