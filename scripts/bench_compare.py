#!/usr/bin/env python3
"""Perf-regression gate: diff fresh BENCH_*.json against committed baselines.

Usage:
    python3 scripts/bench_compare.py --baselines bench/baselines \\
        [--threshold 0.10] [--strict] fresh1.json [fresh2.json ...]

Each fresh artifact is matched to a baseline by file name. Both documents
are flattened to dotted numeric paths and every path present in the
baseline is compared:

  * Deterministic metrics (I/O counts, page counts, record/entry counts,
    result sizes, fractions) must match the baseline within --threshold
    relative tolerance (default 10%, absolute slack 1e-9 for zeros).
    These are functions of the seeded workload, not of machine speed, so
    deviation means behavior changed. Any violation fails the gate.
  * Timing metrics (anything matching seconds/_us/per_sec/latency/
    speedup/wall) vary with the runner and only warn — unless --strict,
    where they are held to 2x in either direction (for dedicated perf
    hardware).
  * Embedded telemetry snapshots ("metrics" subtrees), hardware facts,
    and unclassified paths are ignored; paths new in the fresh artifact
    are additive and fine; paths missing from the fresh artifact fail
    (schema regressions hide behavior regressions).

A "scale" mismatch between fresh and baseline fails immediately: at a
different REXP_SCALE every count differs for honest reasons and the
comparison would be noise.

Besides the baseline diff, any fresh artifact may carry a "gates" array
of absolute acceptance bounds the benchmark computed about itself:
[{"name": ..., "value": v, "max": m}] or {"min": m}. Every gate is
enforced on the FRESH values (no baseline needed): value > max or
value < min fails the run. BENCH_partition.json uses this for its
partitioned-vs-single-tree bounds.

Exit status: 0 clean, 1 regression, 2 usage. No third-party
dependencies.
"""

import argparse
import json
import os
import re
import sys

TIMING_PAT = re.compile(
    r"(seconds|_us\b|per_sec|latency|speedup|wall|elapsed)", re.I)
DETERMINISTIC_PAT = re.compile(
    r"(io\b|_io|pages|records|entries|result|drops|fraction|queries"
    r"|update_ops|objects|salvaged|leaf|height|rate\b|splits|count"
    r"|touches|migrations|retunes|merges|pruned|searched|population)", re.I)
IGNORED_PAT = re.compile(
    r"(^|\.)(metrics|hardware_threads|pid|timestamp|scale|bench|v)(\.|$)")


def flatten(doc, prefix=""):
    """Yields (dotted_path, number) for every numeric scalar in doc."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            yield from flatten(value, f"{prefix}{i}.")
    elif isinstance(doc, bool):
        return  # Booleans are not metrics.
    elif isinstance(doc, (int, float)):
        yield prefix.rstrip("."), float(doc)


def flatten_doc(doc):
    out = {}
    for path, value in flatten(doc):
        out[path] = value
    return out


def classify(path):
    if IGNORED_PAT.search(path):
        return "ignored"
    if TIMING_PAT.search(path):
        return "timing"
    if DETERMINISTIC_PAT.search(path):
        return "deterministic"
    return "ignored"


def rel_delta(fresh, base):
    if base == 0:
        return 0.0 if abs(fresh) < 1e-9 else float("inf")
    return abs(fresh - base) / abs(base)


def compare_file(fresh_path, base_path, threshold, strict):
    with open(fresh_path) as f:
        fresh_doc = json.load(f)
    with open(base_path) as f:
        base_doc = json.load(f)

    failures = []
    warnings = []

    if fresh_doc.get("scale") != base_doc.get("scale"):
        failures.append(
            f"scale mismatch: fresh {fresh_doc.get('scale')} vs baseline "
            f"{base_doc.get('scale')} — regenerate the baseline at the "
            f"gate's scale")
        return failures, warnings, 0

    fresh = flatten_doc(fresh_doc)
    base = flatten_doc(base_doc)

    compared = 0
    for path, base_value in sorted(base.items()):
        kind = classify(path)
        if kind == "ignored":
            continue
        if path not in fresh:
            failures.append(f"{path}: present in baseline, missing in fresh")
            continue
        fresh_value = fresh[path]
        delta = rel_delta(fresh_value, base_value)
        compared += 1
        if kind == "deterministic":
            if delta > threshold:
                failures.append(
                    f"{path}: {fresh_value:g} vs baseline {base_value:g} "
                    f"({delta:+.1%} > {threshold:.0%})")
        else:  # timing
            if strict and delta > 1.0:
                failures.append(
                    f"{path} [timing/strict]: {fresh_value:g} vs baseline "
                    f"{base_value:g} ({delta:+.1%})")
            elif delta > threshold:
                warnings.append(
                    f"{path} [timing]: {fresh_value:g} vs baseline "
                    f"{base_value:g} ({delta:+.1%})")
    return failures, warnings, compared


def check_gates(fresh_path):
    """Enforces the artifact's own absolute gates on its fresh values."""
    with open(fresh_path) as f:
        doc = json.load(f)
    failures = []
    checked = 0
    for gate in doc.get("gates", []):
        name = gate.get("name", "?")
        value = gate.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(f"gate {name}: non-numeric value {value!r}")
            continue
        checked += 1
        if "max" in gate and value > gate["max"]:
            failures.append(
                f"gate {name}: {value:g} > max {gate['max']:g}")
        if "min" in gate and value < gate["min"]:
            failures.append(
                f"gate {name}: {value:g} < min {gate['min']:g}")
    return failures, checked


def main():
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json artifacts against baselines.")
    parser.add_argument("fresh", nargs="+", help="fresh BENCH_*.json files")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline artifacts")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative tolerance for deterministic metrics")
    parser.add_argument("--strict", action="store_true",
                        help="hold timing metrics to 2x as well")
    args = parser.parse_args()

    any_failures = False
    total_compared = 0
    for fresh_path in args.fresh:
        name = os.path.basename(fresh_path)
        # The artifact's own absolute gates hold baseline or not.
        gate_failures, gates_checked = check_gates(fresh_path)
        total_compared += gates_checked
        for f in gate_failures:
            print(f"{name}: FAIL {f}")
        if gate_failures:
            any_failures = True
        elif gates_checked:
            print(f"{name}: OK ({gates_checked} absolute gates)")
        base_path = os.path.join(args.baselines, name)
        if not os.path.isfile(base_path):
            print(f"{name}: no baseline at {base_path} — skipped "
                  f"(commit one to gate this benchmark)")
            continue
        failures, warnings, compared = compare_file(
            fresh_path, base_path, args.threshold, args.strict)
        total_compared += compared
        for w in warnings:
            print(f"{name}: WARN {w}")
        for f in failures:
            print(f"{name}: FAIL {f}")
        if failures:
            any_failures = True
        else:
            print(f"{name}: OK ({compared} metrics within "
                  f"{args.threshold:.0%}, {len(warnings)} timing warnings)")

    if total_compared == 0 and not any_failures:
        print("nothing compared — no matching baselines?", file=sys.stderr)
        sys.exit(2)
    sys.exit(1 if any_failures else 0)


if __name__ == "__main__":
    main()
