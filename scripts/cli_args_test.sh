#!/usr/bin/env bash
# CLI regression test for checked argument parsing (common/parse.h).
#
# Every numeric flag on the four tools must reject garbage with exit
# status 2 (usage) and a diagnostic on stderr — historically atoi turned
# `--page-size bogus` into page_size 0, which either corrupted the run or
# produced a misleading "must be positive" error. Run from CMake as:
#
#   cli_args_test.sh <build-tools-dir>
#
# Exit 0 when every case behaves, 1 with a report otherwise.
set -u

TOOLS_DIR="${1:?usage: cli_args_test.sh <build-tools-dir>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0

# expect_usage <description> -- <cmd...>
# Asserts exit status 2 and a non-empty stderr.
expect_usage() {
  local desc="$1"
  shift 2
  local err="$TMP/err"
  "$@" >/dev/null 2>"$err"
  local status=$?
  if [[ $status -ne 2 ]]; then
    echo "FAIL: $desc — exit $status, want 2 ($*)"
    fails=$((fails + 1))
  elif [[ ! -s "$err" ]]; then
    echo "FAIL: $desc — exit 2 but no diagnostic on stderr ($*)"
    fails=$((fails + 1))
  fi
}

IDX="$TMP/idx.bin"

# corrupt_index: bogus values must die before touching the file.
expect_usage "corrupt_index --page-size bogus" -- \
  "$TOOLS_DIR/corrupt_index" "$IDX" --class none --page-size bogus
expect_usage "corrupt_index --make bogus" -- \
  "$TOOLS_DIR/corrupt_index" "$IDX" --class none --make bogus
expect_usage "corrupt_index --now bogus" -- \
  "$TOOLS_DIR/corrupt_index" "$IDX" --class none --now bogus
expect_usage "corrupt_index --seed -1" -- \
  "$TOOLS_DIR/corrupt_index" "$IDX" --class none --seed -1
if [[ -e "$IDX" ]]; then
  echo "FAIL: corrupt_index created $IDX despite a usage error"
  fails=$((fails + 1))
fi

# Build a real tiny index so the readers have a valid target; a usage
# error must fire before the file is even opened, but checking against a
# real file proves the good path still works.
if ! "$TOOLS_DIR/corrupt_index" "$IDX" --class none --make 64 \
    --page-size 512 >/dev/null 2>&1; then
  echo "FAIL: corrupt_index could not build the fixture index"
  fails=$((fails + 1))
fi

expect_usage "rexp_fsck --page-size bogus" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --page-size bogus
expect_usage "rexp_fsck --page-size 0" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --page-size 0
expect_usage "rexp_fsck --page-size -4096" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --page-size -4096
expect_usage "rexp_fsck --now bogus" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --now bogus
expect_usage "rexp_fsck --now nan" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --now nan
expect_usage "rexp_fsck --dims 2x" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --dims 2x
expect_usage "rexp_fsck --samples 1.5" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --samples 1.5
expect_usage "rexp_fsck --max-findings bogus" -- \
  "$TOOLS_DIR/rexp_fsck" "$IDX" --max-findings bogus

expect_usage "inspect_index --page-size bogus" -- \
  "$TOOLS_DIR/inspect_index" "$IDX" --page-size bogus
expect_usage "inspect_index --now 1e999" -- \
  "$TOOLS_DIR/inspect_index" "$IDX" --now 1e999

expect_usage "rexp_top --interval bogus" -- \
  "$TOOLS_DIR/rexp_top" --interval bogus --once
expect_usage "rexp_top --interval 0" -- \
  "$TOOLS_DIR/rexp_top" --interval 0 --once
expect_usage "rexp_top --soak-objects bogus" -- \
  "$TOOLS_DIR/rexp_top" --soak --soak-objects bogus
expect_usage "rexp_top --soak-seconds bogus" -- \
  "$TOOLS_DIR/rexp_top" --soak --soak-seconds bogus

# Good values must still work end to end: fsck the fixture clean.
if ! "$TOOLS_DIR/rexp_fsck" "$IDX" --page-size 512 --quiet; then
  echo "FAIL: rexp_fsck rejected the clean fixture with valid flags"
  fails=$((fails + 1))
fi

# rexp_top --once over a stream with a torn tail (a writer caught
# mid-append) and a zero-histogram sample: must render the last complete
# sample and exit 0 — never hang, crash, or print the torn line.
MON="$TMP/monitor_torn.jsonl"
{
  printf '{"v":1,"type":"monitor_meta","pid":1,"interval_s":0.1,"name":"t"}\n'
  printf '{"v":1,"type":"sample","seq":0,"wall_ms":1,"dt_s":0.1,"counters":{"tree.ops.inserts":5},"rates":{},"gauges":{},"hist":{}}\n'
  printf '{"v":1,"type":"sample","seq":1,"wall_ms":101,"dt_s":0.1,"coun'
} > "$MON"
TOP_OUT="$TMP/top_out"
if ! "$TOOLS_DIR/rexp_top" --once --file "$MON" > "$TOP_OUT" 2>&1; then
  echo "FAIL: rexp_top --once failed on a torn-tail stream"
  fails=$((fails + 1))
elif ! grep -q "sample 0" "$TOP_OUT"; then
  echo "FAIL: rexp_top --once did not render the last complete sample"
  fails=$((fails + 1))
fi
if ! "$TOOLS_DIR/rexp_top" --once --json --file "$MON" | grep -q '"seq":0'; then
  echo "FAIL: rexp_top --once --json did not emit the complete sample"
  fails=$((fails + 1))
fi

if [[ $fails -ne 0 ]]; then
  echo "$fails CLI parsing regression(s)"
  exit 1
fi
echo "all CLI argument-parsing cases OK"
