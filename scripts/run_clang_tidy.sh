#!/usr/bin/env bash
# Runs clang-tidy (the .clang-tidy profile at the repo root) over every
# first-party translation unit in the compilation database. Zero warnings
# required — WarningsAsErrors is '*' in the profile.
#
#   usage: scripts/run_clang_tidy.sh [build-dir]
#
# The build directory must have been configured already (any cmake run —
# CMAKE_EXPORT_COMPILE_COMMANDS is always on for this project). Skips
# with a notice when clang-tidy is not installed; set REXP_REQUIRE_TIDY=1
# (CI does) to turn a missing tool into a failure.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  if [ "${REXP_REQUIRE_TIDY:-0}" = "1" ]; then
    echo "error: $CLANG_TIDY not found but REXP_REQUIRE_TIDY=1" >&2
    exit 1
  fi
  echo "notice: $CLANG_TIDY not found; skipping static analysis" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json not found;" \
       "configure the build first (cmake -B $BUILD_DIR -S .)" >&2
  exit 1
fi

# First-party sources only: the database also contains GoogleTest/benchmark
# compile commands we have no business linting. Header-only modules
# (src/sched/, src/livetier/, tools/monitor_stream.h) are reached through
# src/lint/header_lint.cc, which exists precisely so they have a compile
# command; if a new header-only module is missing from that TU the sanity
# check below fails the run.
mapfile -t files < <(git ls-files 'src/*.cc' 'tests/*.cc' 'tools/*.cc' \
                                  'bench/*.cc' 'examples/*.cc')

for dir in src/sched src/livetier; do
  while IFS= read -r hdr; do
    if ! grep -q "$(basename "$hdr")" src/lint/header_lint.cc; then
      echo "error: $hdr is not included by src/lint/header_lint.cc;" \
           "header-only code there would escape static analysis" >&2
      exit 1
    fi
  done < <(git ls-files "$dir/*.h")
done

"$CLANG_TIDY" -p "$BUILD_DIR" --quiet "${files[@]}"
