#!/usr/bin/env bash
# Verifies the lock-rank checker is fully compiled out of release
# binaries: no LockRank symbols and none of the checker's diagnostic
# strings may appear in the hot-path benchmark. This is the "zero
# overhead in release" half of the lock-rank contract
# (tests/lock_rank_test.cc covers the debug half).
#
#   usage: scripts/check_lock_rank_stripped.sh <release-binary>
set -u -o pipefail

BIN="${1:?usage: $0 <release-binary>}"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN is not an executable" >&2
  exit 1
fi

fail=0
# grep reads all input (no -q): under pipefail an early-exit grep would
# SIGPIPE nm and make a *match* read as a failed pipeline.
syms="$(nm -C "$BIN" 2>/dev/null | grep -i 'lockrank')" || true
if [ -n "$syms" ]; then
  echo "error: $BIN still contains LockRank symbols:" >&2
  echo "$syms" >&2
  fail=1
fi
# The abort messages only exist in the enabled checker; finding one
# means REXP_LOCK_RANK leaked into a release configuration.
diags="$(strings "$BIN" | grep 'acquisition-order inversion')" || true
if [ -n "$diags" ]; then
  echo "error: $BIN contains lock-rank diagnostic strings" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lock-rank: compiled out of $BIN (no symbols, no diagnostics)"
