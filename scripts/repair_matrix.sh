#!/usr/bin/env bash
# End-to-end repair matrix over every corruption class the verifier can
# seed: builds a small index, damages it with corrupt_index, and drives
# rexp_fsck through the operator workflow — detect (exit 1), repair or
# salvage (exit 3), re-check clean (exit 0). In-place-repairable classes
# must never escalate to salvage; checksum-level and meta-level damage
# must be recovered by --salvage with a quarantine sidecar.
#
#   usage: scripts/repair_matrix.sh [build-dir]
#
# Exits non-zero if any class deviates from its expected exit-code
# sequence.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CORRUPT="$BUILD_DIR/tools/corrupt_index"
FSCK="$BUILD_DIR/tools/rexp_fsck"

for bin in "$CORRUPT" "$FSCK"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run cmake --build $BUILD_DIR first)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

PAGE_SIZE=512
failures=0

# expect <label> <want-rc> <cmd...> — runs the command quietly and
# complains when the exit code differs.
expect() {
  local label="$1" want="$2"
  shift 2
  "$@" > "$WORK/last.out" 2>&1
  local got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL  $label: expected exit $want, got $got" >&2
    sed 's/^/      /' "$WORK/last.out" >&2
    failures=$((failures + 1))
    return 1
  fi
  return 0
}

run_class() {
  local class="$1" mode="$2"
  shift 2
  local idx="$WORK/$class.bin"
  local corrupt_args=() fsck_args=(--page-size "$PAGE_SIZE")
  case "$class" in
    undercut-expiry)
      corrupt_args+=(--stored-expiry)
      fsck_args+=(--stored-expiry)
      ;;
    orphan-page)
      corrupt_args+=(--deletes 450)
      ;;
  esac

  if ! "$CORRUPT" "$idx" --make 600 --class "$class" \
      "${corrupt_args[@]+"${corrupt_args[@]}"}" \
      > "$WORK/last.out" 2>&1; then
    echo "FAIL  $class: corrupt_index could not seed the fault" >&2
    sed 's/^/      /' "$WORK/last.out" >&2
    failures=$((failures + 1))
    return
  fi

  local ok=1
  # 1. Detection: a plain check reports findings.
  expect "$class detect" 1 "$FSCK" "$idx" "${fsck_args[@]}" || ok=0
  # 2. Planning: a dry run still reports findings and must not modify
  #    the file.
  local before after
  before="$(cksum < "$idx")"
  expect "$class dry-run" 1 \
      "$FSCK" "$idx" "${fsck_args[@]}" --repair --salvage --dry-run || ok=0
  after="$(cksum < "$idx")"
  if [ "$before" != "$after" ]; then
    echo "FAIL  $class: --dry-run modified the index file" >&2
    failures=$((failures + 1))
    ok=0
  fi
  # 3. Recovery: repair (or repair escalating to salvage) succeeds.
  if [ "$mode" = repair ]; then
    expect "$class repair" 3 "$FSCK" "$idx" "${fsck_args[@]}" --repair \
        || ok=0
  else
    expect "$class salvage" 3 "$FSCK" "$idx" "${fsck_args[@]}" \
        --repair --salvage --quarantine "$WORK/$class.quarantine" || ok=0
  fi
  # 4. The recovered file verifies clean.
  expect "$class recheck" 0 "$FSCK" "$idx" "${fsck_args[@]}" || ok=0

  if [ "$ok" = 1 ]; then
    echo "PASS  $class ($mode)"
  fi
}

for class in parent-bound undercut-expiry orphan-page stale-free \
    noncanonical-record level-count; do
  run_class "$class" repair
done
for class in bit-rot both-meta; do
  run_class "$class" salvage
done

if [ "$failures" -ne 0 ]; then
  echo "repair matrix: $failures failure(s)" >&2
  exit 1
fi
echo "repair matrix: all classes recovered"
