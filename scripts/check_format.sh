#!/usr/bin/env bash
# Checks that every C++ source file is a no-op under clang-format (the
# .clang-format profile at the repo root). Prints the offending files and
# the diff on failure.
#
# Skips with a notice when clang-format is not installed, so local builds
# on minimal toolchains are not blocked; set REXP_REQUIRE_FORMAT=1 (CI
# does) to turn a missing tool into a failure.
set -u -o pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  if [ "${REXP_REQUIRE_FORMAT:-0}" = "1" ]; then
    echo "error: $CLANG_FORMAT not found but REXP_REQUIRE_FORMAT=1" >&2
    exit 1
  fi
  echo "notice: $CLANG_FORMAT not found; skipping format check" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "no C++ files tracked" >&2
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! diff -u "$f" <("$CLANG_FORMAT" --style=file "$f") \
      > /tmp/rexp_format_diff.$$ 2>&1; then
    echo "format: $f"
    cat /tmp/rexp_format_diff.$$
    status=1
  fi
done
rm -f /tmp/rexp_format_diff.$$

if [ "$status" -ne 0 ]; then
  echo "" >&2
  echo "run: $CLANG_FORMAT -i \$(git ls-files '*.cc' '*.h')" >&2
fi
exit "$status"
