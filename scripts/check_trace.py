#!/usr/bin/env python3
"""Validate a schema-v2 trace stream written by obs::Tracer.

Usage:
    python3 scripts/check_trace.py trace.jsonl [more.jsonl ...]

Checks, per file:
  * every line parses as a JSON object (a torn *final* line — a writer
    killed mid-append — is tolerated and reported, anywhere else fails);
  * the stream is a sequence of segments, each opened by a
    {"seq":0,"type":"trace_meta","v":2} header (append mode produces one
    segment per process);
  * within a segment, "seq" increments by exactly 1;
  * span structure balances: every "ph":"B" pushes its "span" id, every
    "ph":"E" pops the innermost and carries "dur_us"; "parent" on a "B"
    names the enclosing open span; a point event's "span" names the
    innermost open span;
  * all non-structural field values are numbers.

Exit status: 0 when every file validates, 1 otherwise. No third-party
dependencies.
"""

import json
import sys

STRUCTURAL = {"seq", "type", "ph", "span", "parent", "v"}


def fail(path, lineno, msg):
    print(f"{path}:{lineno}: {msg}")
    return False


def check_file(path):
    ok = True
    try:
        with open(path) as f:
            lines = f.read().split("\n")
    except OSError as e:
        return fail(path, 0, f"cannot read: {e}")
    if lines and lines[-1] == "":
        lines.pop()  # Trailing newline.

    in_segment = False
    expected_seq = 0
    span_stack = []  # Open span ids, innermost last.
    events = 0

    for lineno, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                print(f"{path}:{lineno}: note: torn final line tolerated "
                      f"(writer died mid-append)")
                break
            ok = fail(path, lineno, f"unparseable line: {line[:80]!r}")
            continue
        if not isinstance(event, dict):
            ok = fail(path, lineno, "line is not a JSON object")
            continue
        events += 1

        etype = event.get("type")
        seq = event.get("seq")
        if etype == "trace_meta":
            if event.get("v") != 2:
                ok = fail(path, lineno,
                          f"trace_meta version {event.get('v')}, expected 2")
            if seq != 0:
                ok = fail(path, lineno, f"trace_meta seq {seq}, expected 0")
            if span_stack:
                ok = fail(path, lineno,
                          f"new segment with {len(span_stack)} span(s) "
                          f"still open")
            in_segment = True
            expected_seq = 1
            span_stack = []
            continue
        if not in_segment:
            ok = fail(path, lineno, "event before any trace_meta header")
            in_segment = True  # Report once, keep checking.
        if seq != expected_seq:
            ok = fail(path, lineno, f"seq {seq}, expected {expected_seq}")
            expected_seq = seq if isinstance(seq, int) else expected_seq
        expected_seq += 1

        ph = event.get("ph")
        span = event.get("span")
        if ph == "B":
            if not isinstance(span, int) or span <= 0:
                ok = fail(path, lineno, f"'B' event with span {span!r}")
                continue
            parent = event.get("parent")
            if span_stack:
                if parent != span_stack[-1]:
                    ok = fail(path, lineno,
                              f"'B' parent {parent!r}, expected innermost "
                              f"open span {span_stack[-1]}")
            elif parent is not None:
                ok = fail(path, lineno,
                          f"top-level 'B' with parent {parent!r}")
            span_stack.append(span)
        elif ph == "E":
            if not span_stack:
                ok = fail(path, lineno, "'E' event with no open span")
            elif span != span_stack[-1]:
                ok = fail(path, lineno,
                          f"'E' span {span!r}, expected {span_stack[-1]}")
            else:
                span_stack.pop()
            if not isinstance(event.get("dur_us"), (int, float)):
                ok = fail(path, lineno, "'E' event missing numeric dur_us")
        elif ph is not None:
            ok = fail(path, lineno, f"unknown ph {ph!r}")
        else:
            # Point event: span attribution must name the innermost open
            # span (events outside any span carry no span field).
            if span is not None and (not span_stack or
                                     span != span_stack[-1]):
                ok = fail(path, lineno,
                          f"point event span {span!r}, open stack "
                          f"{span_stack}")

        for key, value in event.items():
            if key in STRUCTURAL or key == "dur_us":
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                ok = fail(path, lineno,
                          f"field {key!r} is {type(value).__name__}, "
                          f"expected number")

    if span_stack:
        print(f"{path}: note: {len(span_stack)} span(s) open at EOF "
              f"(writer killed mid-operation) — tolerated")
    if events == 0:
        ok = fail(path, 0, "empty trace")
    if ok:
        print(f"{path}: OK ({events} events)")
    return ok


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    ok = True
    for path in sys.argv[1:]:
        ok = check_file(path) and ok
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
