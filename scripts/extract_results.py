#!/usr/bin/env python3
"""Extract figure-reproduction results into CSV.

Usage:
    python3 scripts/extract_results.py [inputs...] [out_dir]

Each input may be:
  * a ``BENCH_*.json`` file written by a figure binary (the preferred,
    machine-readable path — tables come from the ``tables`` array, and a
    ``<bench>_runs.csv`` with the per-run metrics is written as well),
  * a ``monitor_*.jsonl`` time series written by obs::Monitor, flattened
    into one CSV row per sample (rates, gauges, and per-interval
    histogram percentiles become columns), or
  * a text file of captured benchmark stdout, from which the fixed-width
    TablePrinter blocks are parsed (the legacy path).

The last argument is the output directory if it is not an existing file
(default ``results``). One CSV is written per table, named after the
table title (e.g. ``figure_13_search_io_per_query.csv``). No third-party
dependencies.
"""

import csv
import json
import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug[:60]


def parse_tables(lines):
    """Yields (title, header_row, data_rows) for every TablePrinter block."""
    i = 0
    while i < len(lines):
        line = lines[i].rstrip("\n")
        # A table is a title line followed by a dashed underline.
        if i + 1 < len(lines) and re.fullmatch(r"-{3,}", lines[i + 1].strip()):
            title = line.strip()
            header = re.split(r"\s{2,}", lines[i + 2].strip())
            rows = []
            j = i + 3
            while j < len(lines):
                row_line = lines[j].rstrip("\n")
                if not row_line.strip():
                    break
                cells = re.split(r"\s{2,}", row_line.strip())
                if len(cells) != len(header):
                    break
                rows.append(cells)
                j += 1
            if rows:
                yield title, header, rows
            i = j
        else:
            i += 1


def write_csv(out_dir, title, header, rows):
    path = os.path.join(out_dir, slugify(title) + ".csv")
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        writer.writerows(rows)
    print(f"wrote {path} ({len(rows)} rows)")


RUN_FIELDS = [
    "search_io", "update_io", "btree_io_per_op", "index_pages",
    "expired_fraction", "avg_result_size", "avg_false_drops",
    "queries", "update_ops",
]


def extract_json(path, out_dir):
    """Extracts tables and per-run metrics from one BENCH_*.json file."""
    with open(path) as f:
        doc = json.load(f)
    count = 0
    for table in doc.get("tables", []):
        header = [table["x_label"]] + list(table["series"])
        rows = [[row["x"]] + list(row["values"]) for row in table["rows"]]
        if rows:
            write_csv(out_dir, table["title"], header, rows)
            count += 1
    bench = doc.get("bench", "bench")
    runs = doc.get("runs", [])
    if runs:
        if (all("series" in r for r in runs) and
                any(k in r for r in runs for k in RUN_FIELDS)):
            header = ["series", "x"] + RUN_FIELDS
            rows = [[r.get("series", ""), r.get("x", "")] +
                    [r.get(k, "") for k in RUN_FIELDS] for r in runs]
        else:
            # Runs that don't follow the figure schema (e.g.
            # BENCH_update / BENCH_partition): emit the union of the
            # runs' scalar keys, in first-appearance order.
            fields = []
            for r in runs:
                for k, v in r.items():
                    if k not in fields and not isinstance(v, (dict, list)):
                        fields.append(k)
            header = fields
            rows = [[r.get(k, "") for k in fields] for r in runs]
        write_csv(out_dir, f"{bench}_runs", header, rows)
        count += 1
        count += extract_run_subtables(bench, runs, out_dir)
    return count


def extract_run_subtables(bench, runs, out_dir):
    """Flattens list-of-dict run values (e.g. BENCH_partition's per-class
    "classes" arrays) into one ``<bench>_runs_<key>.csv`` per key, each
    child row prefixed with its parent run's scalar columns."""
    list_keys = []
    for r in runs:
        for k, v in r.items():
            if (k not in list_keys and isinstance(v, list) and v and
                    all(isinstance(e, dict) for e in v)):
                list_keys.append(k)
    count = 0
    for key in list_keys:
        fields = []
        rows = []
        for r in runs:
            parent = {k: v for k, v in r.items()
                      if not isinstance(v, (dict, list))}
            for entry in r.get(key, []):
                row = dict(parent)
                for k, v in entry.items():
                    if isinstance(v, (dict, list)):
                        continue
                    # A child key shadowing a parent column keeps both,
                    # the child under "<key>.<k>".
                    row[f"{key}.{k}" if k in parent else k] = v
                for k in row:
                    if k not in fields:
                        fields.append(k)
                rows.append(row)
        if rows:
            write_csv(out_dir, f"{bench}_runs_{key}", fields,
                      [[row.get(k, "") for k in fields] for row in rows])
            count += 1
    return count


def flatten_sample(sample):
    """One monitor sample -> {column: value} (stable, dotted names)."""
    row = {}
    for key in ("seq", "wall_ms", "dt_s"):
        if key in sample:
            row[key] = sample[key]
    for section in ("rates", "gauges", "counters"):
        for name, value in sample.get(section, {}).items():
            row[f"{section}.{name}"] = value
    for name, hist in sample.get("hist", {}).items():
        for stat, value in hist.items():
            row[f"hist.{name}.{stat}"] = value
    return row


def extract_jsonl(path, out_dir):
    """Extracts an obs::Monitor time series into one CSV."""
    rows = []
    fields = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                sample = json.loads(line)
            except json.JSONDecodeError:
                continue  # Torn final line of a killed writer.
            if sample.get("type") != "sample":
                continue
            row = flatten_sample(sample)
            for k in row:
                if k not in fields:
                    fields.append(k)
            rows.append(row)
    if not rows:
        return 0
    name = os.path.splitext(os.path.basename(path))[0]
    write_csv(out_dir, f"{name}_timeseries", fields,
              [[r.get(k, "") for k in fields] for r in rows])
    return 1


def extract_text(path, out_dir):
    """Extracts TablePrinter blocks from captured benchmark stdout."""
    with open(path) as f:
        lines = f.readlines()
    count = 0
    for title, header, rows in parse_tables(lines):
        write_csv(out_dir, title, header, rows)
        count += 1
    return count


def main():
    args = sys.argv[1:]
    out_dir = "results"
    if len(args) >= 2 and not os.path.isfile(args[-1]):
        out_dir = args.pop()
    if not args:
        args = ["bench_output.txt"]
    os.makedirs(out_dir, exist_ok=True)
    count = 0
    for src in args:
        if src.endswith(".jsonl"):
            count += extract_jsonl(src, out_dir)
        elif src.endswith(".json"):
            count += extract_json(src, out_dir)
        else:
            count += extract_text(src, out_dir)
    if count == 0:
        print("no tables found — did the benchmark sweep run?",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
