#!/usr/bin/env python3
"""Extract the figure-reproduction tables from bench_output.txt into CSV.

Usage:
    python3 scripts/extract_results.py [bench_output.txt] [out_dir]

Writes one CSV per table (figure) found in the benchmark output, named
after the table title (e.g. ``figure_13_search_io_per_query.csv``), ready
for plotting with any tool. No third-party dependencies.
"""

import csv
import os
import re
import sys


def slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug[:60]


def parse_tables(lines):
    """Yields (title, header_row, data_rows) for every TablePrinter block."""
    i = 0
    while i < len(lines):
        line = lines[i].rstrip("\n")
        # A table is a title line followed by a dashed underline.
        if i + 1 < len(lines) and re.fullmatch(r"-{3,}", lines[i + 1].strip()):
            title = line.strip()
            header = re.split(r"\s{2,}", lines[i + 2].strip())
            rows = []
            j = i + 3
            while j < len(lines):
                row_line = lines[j].rstrip("\n")
                if not row_line.strip():
                    break
                cells = re.split(r"\s{2,}", row_line.strip())
                if len(cells) != len(header):
                    break
                rows.append(cells)
                j += 1
            if rows:
                yield title, header, rows
            i = j
        else:
            i += 1


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "results"
    with open(src) as f:
        lines = f.readlines()
    os.makedirs(out_dir, exist_ok=True)
    count = 0
    for title, header, rows in parse_tables(lines):
        path = os.path.join(out_dir, slugify(title) + ".csv")
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(header)
            writer.writerows(rows)
        print(f"wrote {path} ({len(rows)} rows)")
        count += 1
    if count == 0:
        print("no tables found — did the benchmark sweep run?",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
