#!/usr/bin/env bash
# Project convention lint — grep-level rules that clang-tidy cannot
# express because they are about *this* codebase's layering, not C++.
# CI runs this on every push; it needs no compiler and finishes in
# milliseconds, so run it locally before sending a change.
#
#   usage: scripts/check_conventions.sh
#
# Rules:
#   1. No raw `Page*` outside src/storage/. Pages live in buffer-manager
#      frames; holding a bare pointer without the pinning PageGuard is
#      how use-after-evict bugs start. The codec/serialize sites that
#      legitimately receive a caller-pinned page carry a `raw-page-ok`
#      marker comment (same line or the two lines above) with a reason.
#   2. No unchecked numeric parsing (atoi/atof/atol/strtol family,
#      std::stoi/stod). They return 0 or throw on garbage with no usable
#      error signal; use the checked helpers in src/common/parse.h,
#      which is also the only file allowed to touch the strto* calls it
#      wraps.
#   3. No <mutex>/<shared_mutex>/<condition_variable> primitives outside
#      src/sched/. Everything else must use sched::Mutex and friends so
#      the lock-rank checker and the Clang thread-safety annotations see
#      every acquisition. A std::mutex elsewhere is invisible to both.
set -u -o pipefail

cd "$(dirname "$0")/.."

fail=0
report() {  # report <rule> <file:line:text>
  echo "conventions: [$1] $2" >&2
  fail=1
}

# Files under the rules: first-party C++ sources and headers.
mapfile -t files < <(git ls-files 'src/*.h' 'src/*.cc' 'tools/*.h' \
                                  'tools/*.cc' 'tests/*.cc' 'bench/*.cc' \
                                  'examples/*.cc')

# --- Rule 1: raw Page* outside src/storage/ -------------------------------
for f in "${files[@]}"; do
  case "$f" in src/storage/*) continue ;; esac
  while IFS= read -r hit; do
    line="${hit%%:*}"
    # Allowed when the line itself or either of the two preceding lines
    # carries the marker (signatures too long for a same-line comment put
    # it just above).
    start=$((line > 2 ? line - 2 : 1))
    if ! sed -n "${start},${line}p" "$f" | grep -q 'raw-page-ok'; then
      report "raw-page" "$f:$hit"
    fi
  done < <(grep -nE '(^|[^A-Za-z_])Page[[:space:]]*\*' "$f" || true)
done

# --- Rule 2: unchecked numeric parsing ------------------------------------
# Matches both bare and std::-qualified spellings. A parser that uses
# strto* *with* its end pointer and validates it may carry a
# `checked-parse-ok` marker with a reason.
for f in "${files[@]}"; do
  [ "$f" = "src/common/parse.h" ] && continue   # the checked wrappers
  while IFS= read -r hit; do
    case "$hit" in *checked-parse-ok*) continue ;; esac
    report "unchecked-parse" "$f:$hit (use common/parse.h)"
  done < <(grep -nE \
    '(^|[^A-Za-z_.>])(std::)?(atoi|atof|atol|atoll|strtol|strtoll|strtoul|strtoull|strtod|strtof)[[:space:]]*\(|std::sto(i|l|ll|ul|ull|f|d|ld)[[:space:]]*\(' \
    "$f" || true)
done

# --- Rule 3: std synchronization primitives outside src/sched/ ------------
for f in "${files[@]}"; do
  case "$f" in src/sched/*) continue ;; esac
  while IFS= read -r hit; do
    # <mutex> also provides once_flag/call_once, which are not locks; a
    # `std-mutex-ok` marker with a reason admits such an include.
    case "$hit" in *std-mutex-ok*) continue ;; esac
    report "std-mutex" "$f:$hit (use sched::Mutex / sched::SharedMutex)"
  done < <(grep -nE \
    'std::(mutex|shared_mutex|timed_mutex|recursive_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)([^A-Za-z_]|$)|#[[:space:]]*include[[:space:]]*<(mutex|shared_mutex|condition_variable)>' \
    "$f" || true)
done

if [ "$fail" -ne 0 ]; then
  echo "conventions: violations found (markers: see scripts/check_conventions.sh)" >&2
  exit 1
fi
echo "conventions: OK (${#files[@]} files)"
