// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Fleet telemetry monitor: vehicles moving on a road network between
// cities (the paper's workload scenario) report position/velocity when
// their movement changes; a dispatcher repeatedly asks "which vehicles
// will be inside this service region during the next few minutes?"
// (window queries) and tracks a convoy with a moving query.
//
// The index is stored in an ordinary file on disk and re-opened midway to
// demonstrate persistence.
//
//   $ ./fleet_monitor [minutes]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/parse.h"
#include "storage/page_file.h"
#include "tree/tree.h"
#include "workload/generator.h"
#include "workload/workload_spec.h"

using namespace rexp;

int main(int argc, char** argv) {
  double minutes = 180.0;
  if (argc > 1 && !ParsePositiveDouble(argv[1], &minutes)) {
    std::fprintf(stderr, "usage: %s [minutes]\n", argv[0]);
    return 2;
  }

  // The paper's network scenario, scaled to a dispatch fleet: 2,000
  // vehicles, reports paced at ~15-minute intervals, telemetry trusted
  // for 30 minutes.
  WorkloadSpec spec;
  spec.target_objects = 2000;
  spec.total_insertions = 1000000;  // Run until the clock says stop.
  spec.ui = 15;
  spec.exp_t = 30;
  spec.insertions_per_query = 1u << 31;  // We issue our own queries.
  spec.seed = 99;

  std::string path = "/tmp/rexp_fleet_index.bin";
  std::remove(path.c_str());
  auto file = DiskPageFile::Open(path, 4096, /*keep=*/true).value();
  auto tree = std::make_unique<RexpTree2>(TreeConfig::Rexp(), file.get());

  WorkloadGenerator fleet(spec);
  Operation op;
  Time now = 0;
  double next_dispatch = 20;
  bool reopened = false;
  uint64_t reports = 0;

  // The dispatcher's service region: a 120 km square around the middle of
  // the map.
  Rect<2> region = Rect<2>::Cube({500, 500}, 120);

  std::vector<ObjectId> hits;
  while (fleet.Next(&op) && op.time < minutes) {
    now = op.time;
    switch (op.kind) {
      case Operation::Kind::kInsert:
        tree->Insert(op.oid, op.record, now);
        ++reports;
        break;
      case Operation::Kind::kUpdate:
        // Stale (expired) telemetry may already be gone; that is fine.
        (void)tree->Delete(op.oid, op.old_record, now);
        tree->Insert(op.oid, op.record, now);
        ++reports;
        break;
      case Operation::Kind::kQuery:
        break;  // Not generated (see insertions_per_query above).
    }

    if (now >= next_dispatch) {
      next_dispatch += 20;

      // Which vehicles will touch the service region in the next 10 min?
      hits.clear();
      tree->Search(Query<2>::Window(region, now, now + 10), &hits);
      uint64_t io = tree->io_stats().Total();
      std::printf(
          "t=%6.1f  fleet reports=%6llu  entries=%5llu (%4.1f%% stale)  "
          "region hits(10min)=%3zu  cumulative I/O=%llu\n",
          now, static_cast<unsigned long long>(reports),
          static_cast<unsigned long long>(tree->leaf_entries()),
          100 * tree->ExpiredLeafFraction(now), hits.size(),
          static_cast<unsigned long long>(io));

      // Track one vehicle from the answer with a moving query: who will be
      // near it over the next 5 minutes (escort candidates)?
      if (!hits.empty()) {
        // A 30 km box following the region center as a simple convoy path.
        Rect<2> from = Rect<2>::Cube({470, 500}, 30);
        Rect<2> to = Rect<2>::Cube({530, 500}, 30);
        std::vector<ObjectId> escort;
        tree->Search(Query<2>::Moving(from, to, now, now + 5), &escort);
        std::printf("          convoy corridor: %zu candidate escorts\n",
                    escort.size());
      }

      // Halfway through, tear the index down and re-open it from disk.
      if (!reopened && now >= minutes / 2) {
        reopened = true;
        tree.reset();  // Flushes nodes and metadata.
        tree = std::make_unique<RexpTree2>(TreeConfig::Rexp(), file.get());
        std::printf("          -- index re-opened from %s (%llu pages) --\n",
                    path.c_str(),
                    static_cast<unsigned long long>(tree->PagesUsed()));
      }
    }
  }

  std::printf("\nfinal: %llu vehicle reports indexed, %llu pages on disk\n",
              static_cast<unsigned long long>(reports),
              static_cast<unsigned long long>(tree->PagesUsed()));
  tree.reset();
  file.reset();
  std::remove(path.c_str());
  return 0;
}
