// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Quickstart: index a handful of moving objects with expiration times and
// run the three query types of the paper (timeslice, window, moving).
//
//   $ ./quickstart
//
// Walks through the core public API: MakeMovingPoint -> Tree::Insert ->
// Query builders -> Tree::Search -> Tree::Delete, and shows the effect of
// expiration times on query answers.

#include <cstdio>
#include <vector>

#include "storage/page_file.h"
#include "tree/tree.h"

using namespace rexp;

namespace {

void PrintHits(const char* label, const std::vector<ObjectId>& hits) {
  std::printf("%-44s ->", label);
  if (hits.empty()) std::printf(" (none)");
  for (ObjectId oid : hits) std::printf(" #%u", oid);
  std::printf("\n");
}

}  // namespace

int main() {
  // An index lives in a page file; the in-memory one is the default, and
  // DiskPageFile stores the index in an ordinary file. The configuration
  // used here is the paper's best flavor of the R^exp-tree.
  MemoryPageFile file(4096);
  RexpTree2 tree(TreeConfig::Rexp(), &file);

  // Three objects reporting at time 0, positions in km, speeds in km/min.
  // Each report carries an expiration time: when an object has not
  // refreshed its parameters by then, it drops out of query answers.
  Time now = 0;

  // A car heading east at 1.5 km/min, trusted for 60 minutes.
  auto car = MakeMovingPoint<2>({100, 500}, {1.5, 0.0}, now, now + 60);
  tree.Insert(1, car, now);

  // A pedestrian drifting north, trusted for 240 minutes.
  auto walker = MakeMovingPoint<2>({130, 480}, {0.0, 0.05}, now, now + 240);
  tree.Insert(2, walker, now);

  // A phone that reported once and may go offline: 15-minute expiry.
  auto phone = MakeMovingPoint<2>({120, 505}, {-0.3, 0.4}, now, now + 15);
  tree.Insert(3, phone, now);

  std::printf("Indexed %llu objects (height %d, %llu pages)\n\n",
              static_cast<unsigned long long>(tree.leaf_entries()),
              tree.height(),
              static_cast<unsigned long long>(tree.PagesUsed()));

  std::vector<ObjectId> hits;

  // Type 1 — timeslice: who is predicted inside the square at t = 10?
  Rect<2> area{{80, 470}, {160, 520}};
  tree.Search(Query<2>::Timeslice(area, 10), &hits);
  PrintHits("timeslice [80,160]x[470,520] @ t=10", hits);

  // The same question at t = 30: the phone's information has expired, so
  // it is no longer reported even though its trajectory still crosses the
  // area.
  hits.clear();
  tree.Search(Query<2>::Timeslice(area, 30), &hits);
  PrintHits("timeslice @ t=30 (phone expired at 15)", hits);

  // Type 2 — window: anyone crossing the square at any time in [0, 45]?
  hits.clear();
  tree.Search(Query<2>::Window(area, 0, 45), &hits);
  PrintHits("window   @ t in [0,45]", hits);

  // Type 3 — moving: a patrol sweeping east alongside the car.
  hits.clear();
  Rect<2> start = Rect<2>::Cube({105, 500}, 20);
  Rect<2> end = Rect<2>::Cube({165, 500}, 20);
  tree.Search(Query<2>::Moving(start, end, 0, 40), &hits);
  PrintHits("moving   20km box sweeping east, t in [0,40]", hits);

  // Updates are delete + insert with fresh parameters. Deleting an expired
  // record fails by design — the index already treats it as gone.
  now = 20;
  if (!tree.Delete(3, phone, now)) {
    std::printf("\ndelete of object #3 at t=20 failed: already expired "
                "(the lazy purge will reclaim its space)\n");
  }
  auto phone2 = MakeMovingPoint<2>({115, 512}, {0.2, 0.1}, now, now + 15);
  tree.Insert(3, phone2, now);
  hits.clear();
  tree.Search(Query<2>::Timeslice(area, 30), &hits);
  PrintHits("timeslice @ t=30 after phone re-reported", hits);

  // Extension beyond the paper: who are the two nearest live objects to
  // the point (120, 500) as of t = 25?
  hits.clear();
  tree.NearestNeighbors({120, 500}, 25, 2, &hits);
  PrintHits("2 nearest neighbors of (120,500) @ t=25", hits);

  std::printf("\nI/O so far: %llu reads, %llu writes\n",
              static_cast<unsigned long long>(tree.io_stats().reads),
              static_cast<unsigned long long>(tree.io_stats().writes));

  // Self-check: the full invariant catalog (what rexp_fsck runs against
  // a persisted index) is available on a live tree too.
  verify::Report report = tree.Verify(now);
  std::printf("invariant catalog: %s (%llu pages, %llu records checked)\n",
              report.ok() ? "OK" : report.ToString().c_str(),
              static_cast<unsigned long long>(report.pages_walked),
              static_cast<unsigned long long>(report.leaf_records_checked));
  return report.ok() ? 0 : 1;
}
