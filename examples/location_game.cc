// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// A BotFighters-style mixed-reality location game — the paper's motivating
// application. Players roam a city; a player may "shoot" only players
// currently within range. Phones go offline without notice, so every
// position report carries a short expiration time: an offline player
// simply stops being a target, and the R^exp-tree reclaims the stale
// records lazily, without any deregistration traffic.
//
//   $ ./location_game [rounds]
//
// Each round: players report positions (some go offline), every active
// player fires a range query for targets near their predicted position,
// and the game prints a scoreboard. Results are validated against a
// brute-force oracle to show the index returns exactly the right targets.

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <vector>

#include "common/parse.h"
#include "common/random.h"
#include "storage/page_file.h"
#include "tree/reference_index.h"
#include "tree/tree.h"

using namespace rexp;

namespace {

constexpr int kPlayers = 600;
constexpr double kCity = 40.0;        // 40 x 40 km city.
constexpr double kShotRange = 0.5;    // "Only players close by can be shot."
constexpr double kReportTtl = 6.0;    // Minutes before a report goes stale.
constexpr double kRoundMinutes = 2.0;

struct Player {
  bool online = true;
  Vec<2> pos;
  Vec<2> vel;
  Tpbr<2> record;  // Last canonical report (needed for updates).
  bool in_index = false;
  int score = 0;
};

Vec<2> RandomVelocity(Rng* rng) {
  // Walking or driving, up to 0.8 km/min.
  return Vec<2>{rng->Uniform(-0.8, 0.8), rng->Uniform(-0.8, 0.8)};
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 12;
  if (argc > 1 && !ParseI32(argv[1], &rounds)) {
    std::fprintf(stderr, "usage: %s [rounds]\n", argv[0]);
    return 2;
  }
  Rng rng(2026);

  MemoryPageFile file(4096);
  RexpTree2 tree(TreeConfig::Rexp(), &file);
  ReferenceIndex<2> oracle;  // Brute force, for validation.

  std::vector<Player> players(kPlayers);
  Time now = 0;
  for (int i = 0; i < kPlayers; ++i) {
    players[i].pos = Vec<2>{rng.Uniform(0, kCity), rng.Uniform(0, kCity)};
    players[i].vel = RandomVelocity(&rng);
  }

  uint64_t shots = 0, validated = 0;
  for (int round = 0; round < rounds; ++round) {
    // --- Reporting phase -------------------------------------------------
    int offline_events = 0;
    for (int i = 0; i < kPlayers; ++i) {
      Player& p = players[i];
      // Physics: move, bounce off the city limits.
      for (int d = 0; d < 2; ++d) {
        p.pos[d] += p.vel[d] * kRoundMinutes;
        if (p.pos[d] < 0 || p.pos[d] > kCity) {
          p.vel[d] = -p.vel[d];
          p.pos[d] = std::clamp(p.pos[d], 0.0, kCity);
        }
      }
      // 4% of players drop off the network each round — without telling
      // the server. 8% of offline players come back.
      if (p.online && rng.Bernoulli(0.04)) {
        p.online = false;
        ++offline_events;
      } else if (!p.online && rng.Bernoulli(0.08)) {
        p.online = true;
      }
      if (!p.online) continue;

      // Online players refresh their report: delete the old record (this
      // legitimately fails if it already expired) and insert the new one.
      if (p.in_index) {
        (void)tree.Delete(static_cast<ObjectId>(i), p.record, now);
        oracle.Delete(static_cast<ObjectId>(i), p.record, now);
      }
      if (rng.Bernoulli(0.25)) p.vel = RandomVelocity(&rng);
      p.record = MakeMovingPoint<2>(p.pos, p.vel, now, now + kReportTtl);
      tree.Insert(static_cast<ObjectId>(i), p.record, now);
      oracle.Insert(static_cast<ObjectId>(i), p.record);
      p.in_index = true;
    }

    // --- Shooting phase --------------------------------------------------
    // Every online player scans for targets around their position half a
    // minute from now (a timeslice query — "where will everyone be when my
    // shot lands?").
    Time shot_time = now + 0.5;
    int round_hits = 0;
    std::vector<ObjectId> targets, expected;
    for (int i = 0; i < kPlayers; ++i) {
      const Player& p = players[i];
      if (!p.online) continue;
      Vec<2> at = p.record.PointAt(shot_time);
      Query<2> q =
          Query<2>::Timeslice(Rect<2>::Cube(at, 2 * kShotRange), shot_time);
      targets.clear();
      tree.Search(q, &targets);
      expected.clear();
      oracle.Search(q, &expected);
      std::sort(targets.begin(), targets.end());
      std::sort(expected.begin(), expected.end());
      if (targets != expected) {
        std::fprintf(stderr, "index/oracle mismatch in round %d!\n", round);
        return 1;
      }
      ++validated;
      for (ObjectId t : targets) {
        if (t == static_cast<ObjectId>(i)) continue;  // Not yourself.
        players[i].score += 10;
        ++round_hits;
        ++shots;
      }
    }

    std::printf(
        "round %2d  t=%5.1f  online=%4d  offline_events=%2d  hits=%3d  "
        "index: %llu entries, %.1f%% expired\n",
        round, now,
        static_cast<int>(std::count_if(players.begin(), players.end(),
                                       [](const Player& p) {
                                         return p.online;
                                       })),
        offline_events, round_hits,
        static_cast<unsigned long long>(tree.leaf_entries()),
        100 * tree.ExpiredLeafFraction(now));
    now += kRoundMinutes;
    oracle.Vacuum(now);
  }

  // Scoreboard.
  std::vector<int> order(kPlayers);
  for (int i = 0; i < kPlayers; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return players[a].score > players[b].score;
  });
  std::printf("\ntop players:\n");
  for (int k = 0; k < 5; ++k) {
    std::printf("  #%d: player %d with %d points\n", k + 1, order[k],
                players[order[k]].score);
  }
  std::printf("\n%llu shots fired, %llu queries validated against the "
              "oracle, %llu tree pages\n",
              static_cast<unsigned long long>(shots),
              static_cast<unsigned long long>(validated),
              static_cast<unsigned long long>(tree.PagesUsed()));
  return 0;
}
