// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// rexp_inspect: open a persisted R^exp-tree index file and print its
// structure — height, page usage, per-level fill and bounding-rectangle
// statistics, and the live/expired entry split at a given time.
//
//   $ ./inspect_index <index-file> [--now T] [--page-size N]
//                     [--json] [--metrics] [--verify] [--watch [S]]
//
// --watch re-opens the file and re-renders the report every S seconds
// (default 1) until interrupted, clearing the screen between rounds — a
// poor man's rexp_top for the on-disk structure of an index another
// process is writing. A transiently unopenable file (the writer mid-
// commit) prints a waiting line instead of exiting.
//
// --json emits the whole report as one JSON object (structure, per-level
// stats, horizon estimate, and the telemetry registry snapshot) instead
// of the human-readable text; --metrics emits only the registry snapshot.
// --verify additionally runs the full invariant catalog (the same checks
// as rexp_fsck: TPBR conservativeness, expiry monotonicity, occupancy,
// accounting) and fails with exit status 1 on any finding. The contract
// matches rexp_fsck's check-only mode: exit 0 when clean, 1 on findings
// (or an unopenable file), 2 on usage errors, and --json emits the same
// {check, page?, level?, detail} finding objects under "findings".
//
// The configuration flags must match the ones the index was created with
// (defaults: the standard R^exp-tree configuration). Build an index to
// inspect with, e.g., the fleet_monitor example (which leaves
// /tmp/rexp_fleet_index.bin while it runs) or your own code using
// DiskPageFile.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/parse.h"
#include "obs/json_writer.h"
#include "obs/registry.h"
#include "storage/page_file.h"
#include "tree/stats.h"
#include "tree/tree.h"
#include "verify/verifier.h"

using namespace rexp;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index-file> [--now T] [--page-size N] [--json] "
               "[--metrics] [--verify] [--watch [S]]\n",
               argv0);
  return 2;
}

int RunOnce(const std::string& path, Time now, uint32_t page_size, bool json,
            bool metrics_only, bool full_verify) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fclose(probe);

  auto file_or = DiskPageFile::Open(path, page_size, /*keep=*/true);
  if (!file_or.ok()) {
    std::fprintf(stderr, "%s\n", file_or.status().ToString().c_str());
    return 1;
  }
  auto file = std::move(file_or).value();
  TreeConfig config = TreeConfig::Rexp();
  config.page_size = page_size;
  auto tree_or = Tree<2>::Open(config, file.get());
  if (!tree_or.ok()) {
    std::fprintf(stderr, "cannot open index: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  auto tree = std::move(tree_or).value();

  Status verify = tree->VerifyPages();

  // Full invariant catalog on request. Safe even when the page walk above
  // found damage — the verifier reports findings instead of aborting.
  verify::Report report;
  if (full_verify) report = tree->Verify(now);
  const bool sound = verify.ok() && (!full_verify || report.ok());

  if (metrics_only) {
    // Just the registry snapshot (the open + verification walk already
    // populated the device and buffer counters).
    obs::MetricsRegistry registry;
    tree->RegisterMetrics(&registry, "tree.");
    std::printf("%s\n", registry.ToJson().c_str());
    return sound ? 0 : 1;
  }

  if (json) {
    obs::JsonWriter w;
    w.BeginObject();
    w.KV("path", path);
    w.KV("page_size", static_cast<uint64_t>(page_size));
    w.KV("now", now);
    w.KV("meta_epoch", tree->meta_epoch());
    w.KV("meta_slot_errors", tree->meta_slot_errors());
    w.KV("verify_ok", verify.ok());
    if (!verify.ok()) w.KV("verify_error", verify.ToString());
    if (full_verify) {
      // The same finding schema rexp_fsck emits ("ok" plus a "findings"
      // array of {check, page?, level?, detail}), so CI scripts can
      // consume either tool interchangeably.
      verify::WriteReportJson(report, &w);
    }
    if (verify.ok()) {
      TreeStats<2> stats = CollectStats(tree.get(), now);
      w.KV("height", stats.height);
      w.KV("pages", stats.pages);
      w.KV("total_entries", stats.TotalEntries());
      w.Key("levels").BeginArray();
      for (const LevelStats& l : stats.levels) {
        w.BeginObject();
        w.KV("level", l.level);
        w.KV("nodes", l.nodes);
        w.KV("entries", l.entries);
        w.KV("live_entries", l.live_entries);
        w.KV("avg_fill", l.avg_fill);
        w.KV("avg_extent", l.avg_extent);
        w.KV("avg_growth_rate", l.avg_growth_rate);
        w.EndObject();
      }
      w.EndArray();
      w.Key("horizon")
          .BeginObject()
          .KV("ui", tree->horizon().ui())
          .KV("w", tree->horizon().w())
          .KV("h", tree->horizon().DecisionHorizon())
          .EndObject();
      w.KV("expired_leaf_fraction", tree->ExpiredLeafFraction(now));
    }
    obs::MetricsRegistry registry;
    tree->RegisterMetrics(&registry, "tree.");
    w.Key("metrics").RawValue(registry.ToJson());
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return sound ? 0 : 1;
  }

  std::printf("index %s (page size %u)\n", path.c_str(), page_size);
  std::printf("metadata: epoch %llu",
              static_cast<unsigned long long>(tree->meta_epoch()));
  if (tree->meta_slot_errors() > 0) {
    std::printf(" (%d damaged meta slot%s ignored)", tree->meta_slot_errors(),
                tree->meta_slot_errors() == 1 ? "" : "s");
  }
  std::printf("\n");
  std::printf("page verification: %s\n",
              verify.ok() ? "OK (all checksums valid)"
                          : verify.ToString().c_str());
  if (!verify.ok()) {
    // Walking a damaged tree would abort on the corrupt page; stop at
    // the report.
    std::fflush(stdout);
    return 1;
  }
  TreeStats<2> stats = CollectStats(tree.get(), now);
  std::printf("%s", FormatStats(stats).c_str());
  std::printf("estimated update interval UI = %.2f (W = %.2f, H = %.2f)\n",
              tree->horizon().ui(), tree->horizon().w(),
              tree->horizon().DecisionHorizon());
  std::printf("expired leaf fraction at t=%.2f: %.2f%%\n", now,
              100 * tree->ExpiredLeafFraction(now));
  if (full_verify) {
    std::printf("invariant catalog: %s",
                report.ok() ? "OK\n" : report.ToString().c_str());
  }
  return sound ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string path = argv[1];
  Time now = 0;
  uint32_t page_size = 4096;
  bool json = false;
  bool metrics_only = false;
  bool full_verify = false;
  bool watch = false;
  double watch_interval = 1.0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_only = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      full_verify = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
      // Optional numeric refresh period.
      if (i + 1 < argc) {
        double s = 0;
        if (ParsePositiveDouble(argv[i + 1], &s)) {
          watch_interval = s;
          ++i;
        }
      }
    } else if (std::strcmp(argv[i], "--now") == 0 ||
               std::strcmp(argv[i], "--page-size") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", argv[i]);
        return Usage(argv[0]);
      }
      if (std::strcmp(argv[i], "--now") == 0) {
        if (!ParseDouble(argv[i + 1], &now)) {
          std::fprintf(stderr, "--now requires a finite number, got '%s'\n",
                       argv[i + 1]);
          return Usage(argv[0]);
        }
      } else {
        if (!ParsePositiveU32(argv[i + 1], &page_size)) {
          std::fprintf(stderr,
                       "--page-size must be a positive integer, got '%s'\n",
                       argv[i + 1]);
          return Usage(argv[0]);
        }
      }
      ++i;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  if (!watch) {
    return RunOnce(path, now, page_size, json, metrics_only, full_verify);
  }
  while (true) {
    std::printf("\033[H\033[2J");
    RunOnce(path, now, page_size, json, metrics_only, full_verify);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(watch_interval));
  }
}
