// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// rexp_inspect: open a persisted R^exp-tree index file and print its
// structure — height, page usage, per-level fill and bounding-rectangle
// statistics, and the live/expired entry split at a given time.
//
//   $ ./inspect_index <index-file> [--now T] [--page-size N]
//
// The configuration flags must match the ones the index was created with
// (defaults: the standard R^exp-tree configuration). Build an index to
// inspect with, e.g., the fleet_monitor example (which leaves
// /tmp/rexp_fleet_index.bin while it runs) or your own code using
// DiskPageFile.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "storage/page_file.h"
#include "tree/stats.h"
#include "tree/tree.h"

using namespace rexp;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <index-file> [--now T] [--page-size N]\n",
                 argv[0]);
    return 2;
  }
  std::string path = argv[1];
  Time now = 0;
  uint32_t page_size = 4096;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--now") == 0) {
      now = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--page-size") == 0) {
      page_size = static_cast<uint32_t>(std::atoi(argv[i + 1]));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fclose(probe);

  auto file_or = DiskPageFile::Open(path, page_size, /*keep=*/true);
  if (!file_or.ok()) {
    std::fprintf(stderr, "%s\n", file_or.status().ToString().c_str());
    return 1;
  }
  auto file = std::move(file_or).value();
  TreeConfig config = TreeConfig::Rexp();
  config.page_size = page_size;
  auto tree_or = Tree<2>::Open(config, file.get());
  if (!tree_or.ok()) {
    std::fprintf(stderr, "cannot open index: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  auto tree = std::move(tree_or).value();

  std::printf("index %s (page size %u)\n", path.c_str(), page_size);
  std::printf("metadata: epoch %llu",
              static_cast<unsigned long long>(tree->meta_epoch()));
  if (tree->meta_slot_errors() > 0) {
    std::printf(" (%d damaged meta slot%s ignored)", tree->meta_slot_errors(),
                tree->meta_slot_errors() == 1 ? "" : "s");
  }
  std::printf("\n");
  Status verify = tree->VerifyPages();
  std::printf("page verification: %s\n",
              verify.ok() ? "OK (all checksums valid)"
                          : verify.ToString().c_str());
  if (!verify.ok()) {
    // Walking a damaged tree would abort on the corrupt page; stop at
    // the report.
    std::fflush(stdout);
    return 1;
  }
  TreeStats<2> stats = CollectStats(tree.get(), now);
  std::printf("%s", FormatStats(stats).c_str());
  std::printf("estimated update interval UI = %.2f (W = %.2f, H = %.2f)\n",
              tree->horizon().ui(), tree->horizon().w(),
              tree->horizon().DecisionHorizon());
  std::printf("expired leaf fraction at t=%.2f: %.2f%%\n", now,
              100 * tree->ExpiredLeafFraction(now));
  return verify.ok() ? 0 : 1;
}
