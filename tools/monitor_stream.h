// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// Shared support for tools that consume the observability streams: a
// minimal JSON value/parser (sufficient for the monitor, trace, and
// flight-recorder schemas — objects, arrays, strings, numbers, bools,
// null) and a tail(1)-style follower for monitor JSONL files. Kept
// header-only and dependency-free so every tool can include it without
// touching the core library.

#ifndef REXP_TOOLS_MONITOR_STREAM_H_
#define REXP_TOOLS_MONITOR_STREAM_H_

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

#include "common/parse.h"

namespace rexp::tools {

// A parsed JSON value. Object members keep insertion order (the monitor
// writes counters in registration order; tools display them that way).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  // Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const char* key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::string StringOr(const std::string& fallback) const {
    return kind == Kind::kString ? string : fallback;
  }
};

namespace internal {

class JsonParser {
 public:
  JsonParser(const char* p, const char* end) : p_(p), end_(end) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return p_ == end_;
  }

 private:
  void SkipSpace() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }

  bool Consume(char c) {
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    char* num_end = nullptr;
    // A JSON number scanner, not a CLI token parse: the end pointer is
    // validated on the next line.
    double v = std::strtod(p_, &num_end);  // checked-parse-ok
    if (num_end == p_ || num_end > end_) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    p_ = num_end;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return false;
      char esc = *p_++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // Our writers only emit \u00XX control escapes; decode the
          // low byte and ignore anything outside Latin-1. Invalid hex is
          // a parse error (strtol's silent 0 used to inject a NUL byte).
          if (end_ - p_ < 4) return false;
          const char hex[5] = {p_[0], p_[1], p_[2], p_[3], '\0'};
          uint32_t code = 0;
          if (!ParseHex4(hex, &code)) return false;
          if (code < 0x100) out->push_back(static_cast<char>(code));
          p_ += 4;
          break;
        }
        default:
          return false;
      }
    }
    return Consume('"');
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace internal

inline bool ParseJson(const std::string& text, JsonValue* out) {
  *out = JsonValue();
  internal::JsonParser parser(text.data(), text.data() + text.size());
  return parser.Parse(out);
}

// Newest (by mtime) monitor_*.jsonl under `dir`; empty when none exist.
inline std::string NewestMonitorFile(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return std::string();
  std::string best;
  time_t best_mtime = 0;
  while (struct dirent* e = ::readdir(d)) {
    const char* name = e->d_name;
    size_t len = std::strlen(name);
    if (std::strncmp(name, "monitor_", 8) != 0 || len < 14 ||
        std::strcmp(name + len - 6, ".jsonl") != 0) {
      continue;
    }
    std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) continue;
    if (best.empty() || st.st_mtime >= best_mtime) {
      best = path;
      best_mtime = st.st_mtime;
    }
  }
  ::closedir(d);
  return best;
}

// Follows a JSONL file like `tail -f`: each Poll reads whatever complete
// lines were appended since the last call. A trailing line without a
// newline (a writer mid-append, or the torn last line of a crashed
// process) is buffered until its newline arrives, never half-parsed.
class MonitorStream {
 public:
  explicit MonitorStream(std::string path) : path_(std::move(path)) {}

  MonitorStream(const MonitorStream&) = delete;
  MonitorStream& operator=(const MonitorStream&) = delete;

  ~MonitorStream() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool Open() {
    if (file_ != nullptr) return true;
    file_ = std::fopen(path_.c_str(), "r");
    return file_ != nullptr;
  }

  // Appends the new complete lines to `out`; returns how many.
  size_t Poll(std::vector<std::string>* out) {
    if (!Open()) return 0;
    std::clearerr(file_);  // Reset EOF so appended data is visible.
    size_t added = 0;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), file_) != nullptr) {
      partial_ += buf;
      if (!partial_.empty() && partial_.back() == '\n') {
        partial_.pop_back();
        if (!partial_.empty()) {
          out->push_back(std::move(partial_));
          ++added;
        }
        partial_.clear();
      }
    }
    return added;
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::string partial_;
};

}  // namespace rexp::tools

#endif  // REXP_TOOLS_MONITOR_STREAM_H_
