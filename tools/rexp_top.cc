// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// rexp_top: top(1) for a running R^exp-tree. Tails the JSONL time series
// an obs::Monitor writes and renders live operation rates, buffer hit
// ratio, and per-interval latency percentiles as a refreshing terminal
// table.
//
//   $ ./rexp_top [--dir D] [--file F] [--interval S] [--once] [--json]
//   $ ./rexp_top --soak [--soak-seconds S] [--soak-objects N] [--dir D]
//
// Without --file, the newest monitor_*.jsonl under --dir (default
// $REXP_MONITOR_DIR, else ".") is followed; new samples appended by the
// producer appear on the next refresh. --once waits for one sample,
// prints it, and exits (0 on success, 1 if none arrives within 10 s);
// --json prints the raw sample line instead of the table — together they
// make the tool scriptable (CI asserts on `rexp_top --once --json`).
//
// --soak runs a bundled driver instead: an in-memory tree under a steady
// insert/update/search mix with a Monitor attached at 100 ms and the
// flight-recorder fatal-path handlers installed. It is the acceptance
// target ("watch a live index" without writing a driver): run it in one
// terminal, rexp_top in another, kill -TERM it and find the flight dump.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "livetier/tiered_index.h"
#include "obs/flight_recorder.h"
#include "obs/monitor.h"
#include "obs/registry.h"
#include "storage/page_file.h"
#include "tools/monitor_stream.h"
#include "tree/tree.h"

using namespace rexp;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir D] [--file F] [--interval S] [--once] "
               "[--json]\n"
               "       %s --soak [--soak-seconds S] [--soak-objects N] "
               "[--soak-tiered] [--dir D]\n",
               argv0, argv0);
  return 2;
}

// ---------------------------------------------------------------------------
// Soak driver.

int RunSoak(const std::string& dir, double seconds, int objects,
            bool tiered) {
  obs::InstallFlightRecorderDumpHandlers();

  MemoryPageFile file(4096);
  TreeConfig config = TreeConfig::Rexp();
  // In tiered mode every report goes through the in-memory live tier and
  // a background migrator bulk-moves the survivors (DESIGN.md §12); the
  // monitor stream then carries livetier.* next to tree.*.
  std::unique_ptr<TieredIndex<2>> tiered_index;
  std::unique_ptr<Tree<2>> plain_tree;
  if (tiered) {
    tiered_index = std::make_unique<TieredIndex<2>>(config, &file);
  } else {
    plain_tree = std::make_unique<Tree<2>>(config, &file);
  }
  Tree<2>& tree = tiered ? tiered_index->tree() : *plain_tree;

  obs::MetricsRegistry registry;
  if (tiered) {
    tiered_index->RegisterMetrics(&registry, "");
  } else {
    tree.RegisterMetrics(&registry, "tree.");
  }

  obs::Monitor::Options opt;
  opt.dir = dir;
  opt.name = "soak";
  obs::Monitor monitor(&registry, opt);
  monitor.AddJsonProvider("heatmap",
                          [&tree] { return tree.buffer().HeatmapJson(10); });
  Status started = monitor.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "monitor: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("soak: monitor stream %s\n", monitor.path().c_str());
  std::printf("soak: %d objects%s, %s; SIGTERM/SIGINT dumps the flight "
              "recorder\n",
              objects, tiered ? " (tiered live-tier index)" : "",
              seconds > 0 ? "bounded run" : "running until killed");
  std::fflush(stdout);
  if (tiered) tiered_index->StartMigrator(/*interval_s=*/0.1);

  std::mt19937 rng(42);
  std::uniform_real_distribution<double> pos_dist(0.0, 100.0);
  std::uniform_real_distribution<double> vel_dist(-1.0, 1.0);
  std::uniform_int_distribution<int> oid_dist(0, objects - 1);

  auto random_record = [&](Time now) {
    Vec<2> pos{{pos_dist(rng), pos_dist(rng)}};
    Vec<2> vel{{vel_dist(rng), vel_dist(rng)}};
    return MakeMovingPoint<2>(pos, vel, now, now + 120.0);
  };

  Time now = 0;
  std::vector<Tpbr<2>> current(static_cast<size_t>(objects));
  for (int oid = 0; oid < objects; ++oid) {
    current[static_cast<size_t>(oid)] = random_record(now);
    if (tiered) {
      tiered_index->Insert(static_cast<ObjectId>(oid),
                           current[static_cast<size_t>(oid)], now);
    } else {
      tree.Insert(static_cast<ObjectId>(oid),
                  current[static_cast<size_t>(oid)], now);
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<ObjectId> results;
  ObjectId next_short = static_cast<ObjectId>(objects) + 1000000;
  while (true) {
    now += 0.01;
    // A steady position-report mix: mostly updates, a few searches.
    for (int i = 0; i < 20; ++i) {
      int oid = oid_dist(rng);
      Tpbr<2> next = random_record(now);
      if (tiered) {
        (void)tiered_index->Update(static_cast<ObjectId>(oid),
                                   current[static_cast<size_t>(oid)], next,
                                   now);
      } else {
        (void)tree.Update(static_cast<ObjectId>(oid),
                          current[static_cast<size_t>(oid)], next, now);
      }
      current[static_cast<size_t>(oid)] = next;
    }
    if (tiered) {
      // A short-expiry one-shot report (a sensor blip): the live tier's
      // design case, expected to die in memory without a page touch.
      Tpbr<2> blip = random_record(now);
      blip.t_exp = now + 0.25;
      tiered_index->Insert(next_short++, blip, now);
    }
    double lo_x = pos_dist(rng) * 0.9, lo_y = pos_dist(rng) * 0.9;
    Rect<2> r{{{lo_x, lo_y}}, {{lo_x + 10.0, lo_y + 10.0}}};
    results.clear();
    if (tiered) {
      tiered_index->Search(Query<2>::Timeslice(r, now), &results);
    } else {
      tree.Search(Query<2>::Timeslice(r, now), &results);
    }

    if (seconds > 0) {
      double elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      if (elapsed >= seconds) break;
    }
  }
  monitor.Stop();
  std::printf("soak: done\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Rendering.

// Strips the common "tree." / "queue." prefix noise only if every name
// shares it; otherwise names print as-is.
void PrintSample(const tools::JsonValue& sample) {
  const tools::JsonValue* seq = sample.Find("seq");
  const tools::JsonValue* dt = sample.Find("dt_s");
  const tools::JsonValue* wall = sample.Find("wall_ms");
  std::printf("sample %.0f   dt %.3fs   uptime %.1fs\n",
              seq != nullptr ? seq->NumberOr(0) : 0,
              dt != nullptr ? dt->NumberOr(0) : 0,
              wall != nullptr ? wall->NumberOr(0) / 1000.0 : 0);

  if (const tools::JsonValue* rates = sample.Find("rates");
      rates != nullptr && rates->IsObject()) {
    std::printf("\n%-40s %14s\n", "ops/sec", "rate");
    for (const auto& [name, v] : rates->object) {
      if (v.NumberOr(0) == 0) continue;  // Quiet counters stay hidden.
      std::printf("%-40s %14.1f\n", name.c_str(), v.NumberOr(0));
    }
  }
  if (const tools::JsonValue* gauges = sample.Find("gauges");
      gauges != nullptr && gauges->IsObject()) {
    std::printf("\n%-40s %14s\n", "gauge", "value");
    for (const auto& [name, v] : gauges->object) {
      std::printf("%-40s %14.3f\n", name.c_str(), v.NumberOr(0));
    }
  }
  if (const tools::JsonValue* hist = sample.Find("hist");
      hist != nullptr && hist->IsObject() && !hist->object.empty()) {
    std::printf("\n%-40s %8s %9s %9s %9s\n", "latency (interval)", "count",
                "p50", "p90", "p99");
    for (const auto& [name, h] : hist->object) {
      const tools::JsonValue* count = h.Find("count");
      const tools::JsonValue* p50 = h.Find("p50");
      const tools::JsonValue* p90 = h.Find("p90");
      const tools::JsonValue* p99 = h.Find("p99");
      std::printf("%-40s %8.0f %9.1f %9.1f %9.1f\n", name.c_str(),
                  count != nullptr ? count->NumberOr(0) : 0,
                  p50 != nullptr ? p50->NumberOr(0) : 0,
                  p90 != nullptr ? p90->NumberOr(0) : 0,
                  p99 != nullptr ? p99->NumberOr(0) : 0);
    }
  }
}

bool IsSample(const tools::JsonValue& v) {
  const tools::JsonValue* type = v.Find("type");
  return type != nullptr && type->StringOr("") == "sample";
}

int RunTail(const std::string& dir, std::string file, double interval,
            bool once, bool json) {
  // Resolve the stream: an explicit --file wins; otherwise poll the
  // directory until a producer shows up (bounded in --once mode).
  const auto start = std::chrono::steady_clock::now();
  auto waited_too_long = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() > 10.0;
  };
  while (file.empty()) {
    file = tools::NewestMonitorFile(dir);
    if (!file.empty()) break;
    if (once && waited_too_long()) {
      std::fprintf(stderr, "rexp_top: no monitor_*.jsonl under %s\n",
                   dir.c_str());
      return 1;
    }
    if (!once) {
      std::printf("\033[H\033[2Jrexp_top: waiting for a monitor stream "
                  "under %s ...\n",
                  dir.c_str());
      std::fflush(stdout);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  tools::MonitorStream stream(file);
  std::string latest_raw;
  tools::JsonValue latest;
  while (true) {
    std::vector<std::string> lines;
    stream.Poll(&lines);
    for (std::string& line : lines) {
      tools::JsonValue v;
      if (!tools::ParseJson(line, &v)) continue;  // Torn or foreign line.
      if (!IsSample(v)) continue;
      latest = std::move(v);
      latest_raw = std::move(line);
    }

    if (once) {
      if (!latest_raw.empty()) {
        if (json) {
          std::printf("%s\n", latest_raw.c_str());
        } else {
          std::printf("rexp_top — %s\n", stream.path().c_str());
          PrintSample(latest);
        }
        return 0;
      }
      if (waited_too_long()) {
        std::fprintf(stderr, "rexp_top: no sample appeared in %s\n",
                     stream.path().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }

    if (json) {
      // Streaming JSON mode: emit each refresh's latest sample.
      if (!latest_raw.empty()) {
        std::printf("%s\n", latest_raw.c_str());
        latest_raw.clear();
      }
    } else {
      std::printf("\033[H\033[2Jrexp_top — %s\n", stream.path().c_str());
      if (latest.IsObject()) {
        PrintSample(latest);
      } else {
        std::printf("waiting for samples ...\n");
      }
    }
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval > 0 ? interval : 1.0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string file;
  double interval = 1.0;
  bool once = false;
  bool json = false;
  bool soak = false;
  bool soak_tiered = false;
  double soak_seconds = 0;
  int soak_objects = 2000;

  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", flag);
        std::exit(Usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--dir") == 0) {
      dir = value("--dir");
    } else if (std::strcmp(argv[i], "--file") == 0) {
      file = value("--file");
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      const char* v = value("--interval");
      if (!ParsePositiveDouble(v, &interval)) {
        std::fprintf(stderr, "--interval must be a positive number, got "
                             "'%s'\n", v);
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--soak-tiered") == 0) {
      soak_tiered = true;
    } else if (std::strcmp(argv[i], "--soak-seconds") == 0) {
      const char* v = value("--soak-seconds");
      if (!ParseDouble(v, &soak_seconds) || soak_seconds < 0) {
        std::fprintf(stderr, "--soak-seconds must be a non-negative number, "
                             "got '%s'\n", v);
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--soak-objects") == 0) {
      const char* v = value("--soak-objects");
      uint32_t n = 0;
      if (!ParsePositiveU32(v, &n)) {
        std::fprintf(stderr, "--soak-objects must be a positive integer, "
                             "got '%s'\n", v);
        return Usage(argv[0]);
      }
      soak_objects = static_cast<int>(n);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  if (dir.empty()) {
    const char* env = std::getenv("REXP_MONITOR_DIR");
    dir = (env != nullptr && env[0] != '\0') ? env : ".";
  }

  if (soak) return RunSoak(dir, soak_seconds, soak_objects, soak_tiered);
  return RunTail(dir, std::move(file), interval, once, json);
}
