// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// rexp_fsck: offline integrity checker for persisted R^exp-tree indexes.
// Opens a closed index file (no running tree required), parses the
// dual-slot metadata itself, walks every reachable page, and runs the
// full invariant catalog from verify/verifier.h — page checksums, node
// structure, fan-out/occupancy, TPBR conservativeness at sampled
// timestamps, expiration monotonicity, canonical leaf records, free-list
// and page accounting. All damage is enumerated in one pass as typed
// findings; nothing aborts.
//
//   $ ./rexp_fsck <index-file> [--now T] [--page-size N] [--dims D]
//                 [--config rexp|tpr] [--samples N] [--max-findings N]
//                 [--json] [--quiet]
//
// Exit status: 0 when the index is sound, 1 when findings were reported
// (or the file cannot be opened), 2 on usage errors.
//
// The configuration flags must match the ones the index was created with
// (defaults: the standard 2-d R^exp-tree configuration, like
// inspect_index).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json_writer.h"
#include "storage/page_file.h"
#include "tree/tree_config.h"
#include "verify/verifier.h"

using namespace rexp;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index-file> [--now T] [--page-size N] [--dims D] "
               "[--config rexp|tpr] [--samples N] [--max-findings N] "
               "[--json] [--quiet]\n",
               argv0);
  return 2;
}

template <int kDims>
verify::Report Run(PageFile* file, const TreeConfig& config,
                   const verify::VerifyOptions& options) {
  return verify::TreeVerifier<kDims>::VerifyFile(file, config, options);
}

void WriteJson(const std::string& path, uint32_t page_size, Time now,
               const verify::Report& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("path", path);
  w.KV("page_size", static_cast<uint64_t>(page_size));
  w.KV("now", now);
  w.KV("ok", report.ok());
  w.KV("meta_epoch", report.meta_epoch);
  w.KV("height", static_cast<int64_t>(report.height));
  w.KV("pages_walked", report.pages_walked);
  w.KV("entries_checked", report.entries_checked);
  w.KV("leaf_records_checked", report.leaf_records_checked);
  w.KV("live_leaf_entries", report.live_leaf_entries);
  w.KV("underfull_nodes", report.underfull_nodes);
  w.KV("damaged_meta_slots", static_cast<int64_t>(report.damaged_meta_slots));
  w.KV("walk_complete", report.walk_complete);
  w.KV("findings_suppressed",
       static_cast<uint64_t>(report.findings_suppressed));
  w.Key("findings").BeginArray();
  for (const verify::Finding& f : report.findings) {
    w.BeginObject();
    w.KV("check", std::string(verify::CheckIdName(f.check)));
    if (f.page != kInvalidPageId) {
      w.KV("page", static_cast<uint64_t>(f.page));
    }
    if (f.level >= 0) w.KV("level", static_cast<int64_t>(f.level));
    w.KV("detail", f.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string path = argv[1];
  verify::VerifyOptions options;
  uint32_t page_size = 4096;
  int dims = 2;
  bool json = false;
  bool quiet = false;
  TreeConfig config = TreeConfig::Rexp();
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--now") == 0 ||
               std::strcmp(argv[i], "--page-size") == 0 ||
               std::strcmp(argv[i], "--dims") == 0 ||
               std::strcmp(argv[i], "--config") == 0 ||
               std::strcmp(argv[i], "--samples") == 0 ||
               std::strcmp(argv[i], "--max-findings") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", argv[i]);
        return Usage(argv[0]);
      }
      const char* value = argv[i + 1];
      if (std::strcmp(argv[i], "--now") == 0) {
        options.now = std::atof(value);
      } else if (std::strcmp(argv[i], "--page-size") == 0) {
        page_size = static_cast<uint32_t>(std::atoi(value));
        if (page_size == 0) {
          std::fprintf(stderr, "--page-size must be a positive integer\n");
          return Usage(argv[0]);
        }
      } else if (std::strcmp(argv[i], "--dims") == 0) {
        dims = std::atoi(value);
        if (dims < 1 || dims > 3) {
          std::fprintf(stderr, "--dims must be 1, 2, or 3\n");
          return Usage(argv[0]);
        }
      } else if (std::strcmp(argv[i], "--config") == 0) {
        if (std::strcmp(value, "rexp") == 0) {
          config = TreeConfig::Rexp();
        } else if (std::strcmp(value, "tpr") == 0) {
          config = TreeConfig::Tpr();
        } else {
          std::fprintf(stderr, "--config must be 'rexp' or 'tpr'\n");
          return Usage(argv[0]);
        }
      } else if (std::strcmp(argv[i], "--samples") == 0) {
        options.horizon_samples = std::atoi(value);
        if (options.horizon_samples < 0) {
          std::fprintf(stderr, "--samples must be non-negative\n");
          return Usage(argv[0]);
        }
      } else {
        const int n = std::atoi(value);
        if (n <= 0) {
          std::fprintf(stderr, "--max-findings must be a positive integer\n");
          return Usage(argv[0]);
        }
        options.max_findings = static_cast<size_t>(n);
      }
      ++i;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  config.page_size = page_size;

  // DiskPageFile::Open creates missing files; a checker must not. Probe
  // for existence first so a typo'd path is an error, not a clean run
  // over a freshly created empty file.
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fclose(probe);

  auto file_or = DiskPageFile::Open(path, page_size, /*keep=*/true);
  if (!file_or.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 file_or.status().ToString().c_str());
    return 1;
  }
  auto file = std::move(file_or).value();

  verify::Report report;
  switch (dims) {
    case 1:
      report = Run<1>(file.get(), config, options);
      break;
    case 3:
      report = Run<3>(file.get(), config, options);
      break;
    default:
      report = Run<2>(file.get(), config, options);
      break;
  }

  if (json) {
    WriteJson(path, page_size, options.now, report);
  } else if (!quiet || !report.ok()) {
    std::printf("%s", report.ToString().c_str());
  }
  return report.ok() ? 0 : 1;
}
