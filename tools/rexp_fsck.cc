// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// rexp_fsck: offline integrity checker *and repairer* for persisted
// R^exp-tree indexes. Opens a closed index file (no running tree
// required), parses the dual-slot metadata itself, walks every reachable
// page, and runs the full invariant catalog from verify/verifier.h —
// page checksums, node structure, fan-out/occupancy, TPBR
// conservativeness at sampled timestamps, expiration monotonicity,
// canonical leaf records, free-list and page accounting. All damage is
// enumerated in one pass as typed findings; nothing aborts.
//
//   $ ./rexp_fsck <index-file> [--now T] [--page-size N] [--dims D]
//                 [--config rexp|tpr] [--stored-expiry] [--samples N]
//                 [--max-findings N] [--repair] [--salvage] [--dry-run]
//                 [--quarantine PATH] [--fill F] [--json] [--quiet]
//   $ ./rexp_fsck --manifest <manifest-file> [check-only flags]
//
// The second form checks a velocity-partitioned index (src/partition/):
// the manifest is validated, every partition file gets the full per-tree
// catalog, and the class discipline is cross-checked (no live object in
// two partitions, none faster than its class ceiling, merged-away
// classes empty). Dims and page size come from the manifest; --repair
// and --salvage are check-time-only rejections in this mode.
//
// Modes (verify/repair.h documents the escalation order):
//   (none)      check only.
//   --repair    in-place fix of a structurally walkable tree; refuses
//               when fixing would guess at data.
//   --salvage   last-resort rebuild: scan every page for valid leaves,
//               quarantine unreadable pages into a sidecar file
//               (default <index-file>.quarantine, override with
//               --quarantine), bulk-load the survivors into a fresh
//               file, and atomically rename it over the original.
//   --repair --salvage   try repair first, escalate to salvage if it
//               refuses.
//   --dry-run   plan and report either mode without writing a byte.
//
// Exit status: 0 when the index is sound (nothing needed fixing), 1 when
// findings were reported in check-only or dry-run mode (or the file
// cannot be opened), 2 on usage errors, 3 when the index was repaired or
// salvaged and now verifies clean, 4 when it is damaged beyond what the
// requested mode can fix.
//
// The configuration flags must match the ones the index was created with
// (defaults: the standard 2-d R^exp-tree configuration, like
// inspect_index).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parse.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "partition/partition_verify.h"
#include "storage/page_file.h"
#include "tree/tree_config.h"
#include "verify/repair.h"
#include "verify/verifier.h"

using namespace rexp;

namespace {

// Exit codes (documented in the header comment above).
constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitFixed = 3;
constexpr int kExitUnsalvageable = 4;

constexpr uint32_t kQuarantineMagic = 0x52515852;  // "RXQR".

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index-file> [--now T] [--page-size N] [--dims D] "
               "[--config rexp|tpr] [--stored-expiry] [--samples N] "
               "[--max-findings N] [--repair] [--salvage] [--dry-run] "
               "[--quarantine PATH] [--fill F] [--json] [--quiet]\n"
               "       %s --manifest <manifest-file> [check-only flags]\n",
               argv0, argv0);
  return kExitUsage;
}

struct FsckOptions {
  std::string path;
  verify::VerifyOptions verify;
  TreeConfig config = TreeConfig::Rexp();
  int dims = 2;
  bool manifest = false;  // `path` names a partition manifest instead.
  bool repair = false;
  bool salvage = false;
  bool dry_run = false;
  double fill = 0.7;
  std::string quarantine_path;  // Defaults to path + ".quarantine".
  bool json = false;
  bool quiet = false;
};

// Serializes quarantined pages into the sidecar file. Per-record format
// (all integers little-endian u32): magic "RXQR" | page id | frame size |
// reason length | reason bytes | raw frame bytes. DESIGN.md §11.
bool WriteQuarantineFile(const std::string& path,
                         const std::vector<verify::QuarantinedPage>& pages) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write quarantine file %s\n", path.c_str());
    return false;
  }
  bool ok = true;
  for (const verify::QuarantinedPage& q : pages) {
    const uint32_t header[4] = {
        kQuarantineMagic, q.page, static_cast<uint32_t>(q.frame.size()),
        static_cast<uint32_t>(q.reason.size())};
    ok = ok && std::fwrite(header, sizeof(header), 1, f) == 1;
    ok = ok && (q.reason.empty() ||
                std::fwrite(q.reason.data(), q.reason.size(), 1, f) == 1);
    ok = ok && (q.frame.empty() ||
                std::fwrite(q.frame.data(), q.frame.size(), 1, f) == 1);
  }
  ok = std::fclose(f) == 0 && ok;
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

void PrintRepairReport(const verify::RepairReport& report, bool dry_run) {
  std::printf("%s:\n", dry_run ? "repair plan (dry run)" : "repair");
  for (const std::string& action : report.actions) {
    std::printf("  %s\n", action.c_str());
  }
  std::printf(
      "  dropped %llu expired and %llu non-canonical record(s); "
      "recomputed %llu bound(s); excised %llu empty subtree(s); "
      "%llu page(s) rewritten, %llu reclaimed\n",
      static_cast<unsigned long long>(report.records_dropped_expired),
      static_cast<unsigned long long>(report.records_dropped_noncanonical),
      static_cast<unsigned long long>(report.bounds_recomputed),
      static_cast<unsigned long long>(report.empty_subtrees_excised),
      static_cast<unsigned long long>(report.pages_rewritten),
      static_cast<unsigned long long>(report.pages_reclaimed));
}

void PrintSalvageReport(const verify::SalvageReport& report, bool dry_run) {
  std::printf("%s:\n", dry_run ? "salvage plan (dry run)" : "salvage");
  std::printf(
      "  scanned %llu page(s) (%llu leaf, %llu quarantined); "
      "%llu record(s) seen, %llu salvaged "
      "(%llu expired, %llu non-canonical dropped, %llu duplicate(s) "
      "resolved)\n",
      static_cast<unsigned long long>(report.pages_scanned),
      static_cast<unsigned long long>(report.leaf_pages),
      static_cast<unsigned long long>(report.pages_quarantined),
      static_cast<unsigned long long>(report.records_seen),
      static_cast<unsigned long long>(report.records_salvaged),
      static_cast<unsigned long long>(report.records_dropped_expired),
      static_cast<unsigned long long>(report.records_dropped_noncanonical),
      static_cast<unsigned long long>(report.duplicates_resolved));
}

void WriteRepairJson(const verify::RepairReport& report, obs::JsonWriter* w) {
  w->Key("repair").BeginObject();
  w->KV("ok", report.ok());
  w->KV("changed", report.changed());
  w->KV("needs_salvage", report.needs_salvage);
  w->KV("records_dropped_expired", report.records_dropped_expired);
  w->KV("records_dropped_noncanonical", report.records_dropped_noncanonical);
  w->KV("bounds_recomputed", report.bounds_recomputed);
  w->KV("empty_subtrees_excised", report.empty_subtrees_excised);
  w->KV("pages_rewritten", report.pages_rewritten);
  w->KV("pages_reclaimed", report.pages_reclaimed);
  w->KV("root_collapsed", report.root_collapsed);
  w->KV("meta_rewritten", report.meta_rewritten);
  w->Key("actions").BeginArray();
  for (const std::string& action : report.actions) w->Value(action);
  w->EndArray();
  w->EndObject();
}

void WriteSalvageJson(const verify::SalvageReport& report,
                      obs::JsonWriter* w) {
  w->Key("salvage").BeginObject();
  w->KV("ok", report.ok());
  w->KV("pages_scanned", report.pages_scanned);
  w->KV("leaf_pages", report.leaf_pages);
  w->KV("pages_quarantined", report.pages_quarantined);
  w->KV("records_seen", report.records_seen);
  w->KV("records_salvaged", report.records_salvaged);
  w->KV("records_dropped_expired", report.records_dropped_expired);
  w->KV("records_dropped_noncanonical", report.records_dropped_noncanonical);
  w->KV("duplicates_resolved", report.duplicates_resolved);
  w->EndObject();
}

// The per-run result, accumulated so a single JSON object can be emitted
// at the end regardless of which modes ran.
struct Outcome {
  verify::Report report;  // The final verification state of the index.
  bool ran_repair = false;
  verify::RepairReport repair;
  bool ran_salvage = false;
  verify::SalvageReport salvage;
  int exit_code = kExitFindings;
};

template <int kDims>
Outcome RunTool(PageFile* file, std::unique_ptr<DiskPageFile> owned_file,
                const FsckOptions& opt) {
  Outcome out;
  out.report = verify::TreeVerifier<kDims>::VerifyFile(file, opt.config,
                                                       opt.verify);
  if (out.report.ok()) {
    out.exit_code = kExitClean;
    return out;
  }
  if (!opt.repair && !opt.salvage) {
    out.exit_code = kExitFindings;
    return out;
  }

  bool escalate_to_salvage = opt.salvage && !opt.repair;
  if (opt.repair) {
    verify::RepairOptions repair_options;
    repair_options.verify = opt.verify;
    repair_options.dry_run = opt.dry_run;
    auto repaired =
        verify::TreeRepairer<kDims>::Repair(file, opt.config, repair_options);
    if (!repaired.ok()) {
      std::fprintf(stderr, "repair failed: %s\n",
                   repaired.status().ToString().c_str());
      out.exit_code = kExitUnsalvageable;
      return out;
    }
    out.ran_repair = true;
    out.repair = std::move(repaired).value();
    if (opt.dry_run) {
      out.exit_code = kExitFindings;
      if (out.repair.needs_salvage && !opt.salvage) return out;
      if (!out.repair.needs_salvage) return out;
      escalate_to_salvage = true;  // Plan the salvage too.
    } else if (out.repair.ok()) {
      out.report = out.repair.after;
      out.exit_code = out.repair.changed() ? kExitFixed : kExitClean;
      return out;
    } else if (opt.salvage) {
      escalate_to_salvage = true;
    } else {
      out.report = out.repair.after;
      out.exit_code = kExitUnsalvageable;
      return out;
    }
  }

  if (!escalate_to_salvage) return out;

  verify::SalvageOptions salvage_options;
  salvage_options.now = opt.verify.now;
  salvage_options.fill = opt.fill;
  salvage_options.dry_run = opt.dry_run;
  salvage_options.verify = opt.verify;
  std::vector<verify::QuarantinedPage> quarantine;

  if (opt.dry_run) {
    auto salvaged = verify::TreeRepairer<kDims>::Salvage(
        file, nullptr, opt.config, salvage_options, &quarantine);
    if (!salvaged.ok()) {
      std::fprintf(stderr, "salvage failed: %s\n",
                   salvaged.status().ToString().c_str());
      out.exit_code = kExitUnsalvageable;
      return out;
    }
    out.ran_salvage = true;
    out.salvage = std::move(salvaged).value();
    out.exit_code = kExitFindings;
    return out;
  }

  // Build the fresh tree beside the damaged file, then atomically rename
  // it over the original so a crash mid-salvage never destroys the input.
  const std::string fresh_path = opt.path + ".salvaged";
  std::remove(fresh_path.c_str());
  auto fresh_or = DiskPageFile::Open(fresh_path, opt.config.page_size,
                                     /*keep=*/true);
  if (!fresh_or.ok()) {
    std::fprintf(stderr, "cannot create %s: %s\n", fresh_path.c_str(),
                 fresh_or.status().ToString().c_str());
    out.exit_code = kExitUnsalvageable;
    return out;
  }
  auto fresh = std::move(fresh_or).value();
  auto salvaged = verify::TreeRepairer<kDims>::Salvage(
      file, fresh.get(), opt.config, salvage_options, &quarantine);
  if (!salvaged.ok()) {
    std::fprintf(stderr, "salvage failed: %s\n",
                 salvaged.status().ToString().c_str());
    out.exit_code = kExitUnsalvageable;
    return out;
  }
  out.ran_salvage = true;
  out.salvage = std::move(salvaged).value();
  if (!quarantine.empty()) {
    const std::string qpath = opt.quarantine_path.empty()
                                  ? opt.path + ".quarantine"
                                  : opt.quarantine_path;
    if (!WriteQuarantineFile(qpath, quarantine)) {
      out.exit_code = kExitUnsalvageable;
      return out;
    }
    if (!opt.quiet) {
      std::printf("quarantined %zu page(s) into %s\n", quarantine.size(),
                  qpath.c_str());
    }
  }
  if (!out.salvage.ok()) {
    out.report = out.salvage.after;
    out.exit_code = kExitUnsalvageable;
    return out;
  }
  // Close both files before renaming the rebuilt one over the original.
  fresh.reset();
  owned_file.reset();
  if (std::rename(fresh_path.c_str(), opt.path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s over %s\n", fresh_path.c_str(),
                 opt.path.c_str());
    out.exit_code = kExitUnsalvageable;
    return out;
  }
  out.report = out.salvage.after;
  out.exit_code = kExitFixed;
  return out;
}

void WriteJson(const FsckOptions& opt, const Outcome& out) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("path", opt.path);
  w.KV("partitioned", opt.manifest);
  w.KV("page_size", static_cast<uint64_t>(opt.config.page_size));
  w.KV("now", opt.verify.now);
  w.KV("meta_epoch", out.report.meta_epoch);
  w.KV("height", static_cast<int64_t>(out.report.height));
  w.KV("pages_walked", out.report.pages_walked);
  w.KV("entries_checked", out.report.entries_checked);
  w.KV("leaf_records_checked", out.report.leaf_records_checked);
  w.KV("live_leaf_entries", out.report.live_leaf_entries);
  w.KV("underfull_nodes", out.report.underfull_nodes);
  w.KV("damaged_meta_slots",
       static_cast<int64_t>(out.report.damaged_meta_slots));
  w.KV("walk_complete", out.report.walk_complete);
  verify::WriteReportJson(out.report, &w);
  if (out.ran_repair) WriteRepairJson(out.repair, &w);
  if (out.ran_salvage) WriteSalvageJson(out.salvage, &w);
  w.KV("exit_code", static_cast<int64_t>(out.exit_code));
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  FsckOptions opt;
  uint32_t page_size = 4096;
  int first_flag = 2;
  if (std::strcmp(argv[1], "--manifest") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "--manifest requires a path\n");
      return Usage(argv[0]);
    }
    opt.manifest = true;
    opt.path = argv[2];
    first_flag = 3;
  } else {
    opt.path = argv[1];
  }
  for (int i = first_flag; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opt.quiet = true;
    } else if (std::strcmp(argv[i], "--repair") == 0) {
      opt.repair = true;
    } else if (std::strcmp(argv[i], "--salvage") == 0) {
      opt.salvage = true;
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      opt.dry_run = true;
    } else if (std::strcmp(argv[i], "--stored-expiry") == 0) {
      opt.config.store_tpbr_expiration = true;
    } else if (std::strncmp(argv[i], "--quarantine=", 13) == 0) {
      opt.quarantine_path = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--quarantine") == 0 ||
               std::strcmp(argv[i], "--now") == 0 ||
               std::strcmp(argv[i], "--page-size") == 0 ||
               std::strcmp(argv[i], "--dims") == 0 ||
               std::strcmp(argv[i], "--config") == 0 ||
               std::strcmp(argv[i], "--samples") == 0 ||
               std::strcmp(argv[i], "--fill") == 0 ||
               std::strcmp(argv[i], "--max-findings") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", argv[i]);
        return Usage(argv[0]);
      }
      const char* value = argv[i + 1];
      if (std::strcmp(argv[i], "--quarantine") == 0) {
        opt.quarantine_path = value;
      } else if (std::strcmp(argv[i], "--now") == 0) {
        if (!ParseDouble(value, &opt.verify.now)) {
          std::fprintf(stderr, "--now requires a finite number, got '%s'\n",
                       value);
          return Usage(argv[0]);
        }
      } else if (std::strcmp(argv[i], "--page-size") == 0) {
        if (!ParsePositiveU32(value, &page_size)) {
          std::fprintf(stderr,
                       "--page-size must be a positive integer, got '%s'\n",
                       value);
          return Usage(argv[0]);
        }
      } else if (std::strcmp(argv[i], "--dims") == 0) {
        int32_t dims = 0;
        if (!ParseI32(value, &dims) || dims < 1 || dims > 3) {
          std::fprintf(stderr, "--dims must be 1, 2, or 3, got '%s'\n",
                       value);
          return Usage(argv[0]);
        }
        opt.dims = dims;
      } else if (std::strcmp(argv[i], "--config") == 0) {
        const bool stored_expiry = opt.config.store_tpbr_expiration;
        if (std::strcmp(value, "rexp") == 0) {
          opt.config = TreeConfig::Rexp();
        } else if (std::strcmp(value, "tpr") == 0) {
          opt.config = TreeConfig::Tpr();
        } else {
          std::fprintf(stderr, "--config must be 'rexp' or 'tpr'\n");
          return Usage(argv[0]);
        }
        opt.config.store_tpbr_expiration |= stored_expiry;
      } else if (std::strcmp(argv[i], "--samples") == 0) {
        int32_t samples = 0;
        if (!ParseI32(value, &samples) || samples < 0) {
          std::fprintf(stderr,
                       "--samples must be a non-negative integer, got '%s'\n",
                       value);
          return Usage(argv[0]);
        }
        opt.verify.horizon_samples = samples;
      } else if (std::strcmp(argv[i], "--fill") == 0) {
        if (!ParseDouble(value, &opt.fill) ||
            !(opt.fill > 0 && opt.fill <= 1.0)) {
          std::fprintf(stderr, "--fill must be in (0, 1], got '%s'\n", value);
          return Usage(argv[0]);
        }
      } else {
        uint32_t n = 0;
        if (!ParsePositiveU32(value, &n)) {
          std::fprintf(stderr,
                       "--max-findings must be a positive integer, got "
                       "'%s'\n",
                       value);
          return Usage(argv[0]);
        }
        opt.verify.max_findings = static_cast<size_t>(n);
      }
      ++i;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  opt.config.page_size = page_size;

  if (opt.manifest) {
    if (opt.repair || opt.salvage || opt.dry_run) {
      std::fprintf(stderr,
                   "--manifest mode is check-only; --repair/--salvage/"
                   "--dry-run apply to single index files\n");
      return Usage(argv[0]);
    }
    Outcome out;
    int dims = 0;
    out.report =
        partition::VerifyPartitionedAuto(opt.path, opt.config, opt.verify,
                                         &dims);
    out.exit_code = out.report.ok() ? kExitClean : kExitFindings;
    if (opt.json) {
      WriteJson(opt, out);
    } else if (!opt.quiet || !out.report.ok()) {
      std::printf("%s", out.report.ToString().c_str());
    }
    return out.exit_code;
  }

  // DiskPageFile::Open creates missing files; a checker must not. Probe
  // for existence first so a typo'd path is an error, not a clean run
  // over a freshly created empty file.
  std::FILE* probe = std::fopen(opt.path.c_str(), "rb");
  if (probe == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", opt.path.c_str());
    return kExitFindings;
  }
  std::fclose(probe);

  auto file_or = DiskPageFile::Open(opt.path, page_size, /*keep=*/true);
  if (!file_or.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", opt.path.c_str(),
                 file_or.status().ToString().c_str());
    return kExitFindings;
  }
  auto file = std::move(file_or).value();
  PageFile* raw = file.get();

  Outcome out;
  switch (opt.dims) {
    case 1:
      out = RunTool<1>(raw, std::move(file), opt);
      break;
    case 3:
      out = RunTool<3>(raw, std::move(file), opt);
      break;
    default:
      out = RunTool<2>(raw, std::move(file), opt);
      break;
  }

  if (opt.json) {
    WriteJson(opt, out);
  } else {
    if (out.ran_repair && (!opt.quiet || !out.repair.ok())) {
      PrintRepairReport(out.repair, opt.dry_run);
    }
    if (out.ran_salvage && (!opt.quiet || !out.salvage.ok())) {
      PrintSalvageReport(out.salvage, opt.dry_run);
    }
    if (!opt.quiet || !out.report.ok()) {
      std::printf("%s", out.report.ToString().c_str());
    }
  }
  if (out.exit_code == kExitFindings ||
      out.exit_code == kExitUnsalvageable) {
    // Leave the recent-operation context beside the damage report. The
    // ring is empty for a purely offline check, but when fsck runs inside
    // a process that exercised the index (tests, embedded use) the dump
    // shows what ran right before the corruption.
    std::string dump = obs::DumpFlightRecorderNow("fsck_findings");
    if (!dump.empty() && !opt.quiet) {
      std::fprintf(stderr, "flight recorder dumped to %s\n", dump.c_str());
    }
  }
  return out.exit_code;
}
