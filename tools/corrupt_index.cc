// Copyright 2026 The Rexp Authors. Licensed under the Apache License 2.0.
//
// corrupt_index: build a small persisted R^exp-tree index and/or seed one
// specific corruption class into it. This is the CI harness behind the
// repair gate (scripts/repair_matrix.sh): every class here maps onto a
// verifier finding class, and rexp_fsck --repair / --salvage must turn
// the damaged file back into one that verifies clean.
//
//   $ ./corrupt_index <index-file> [--make N] [--deletes M] --class NAME
//                     [--now T] [--life L] [--page-size N]
//                     [--stored-expiry] [--seed S]
//
// --make N first (re)builds the index at the path with N random 2-d
// points whose expirations lie in (now, now + L]; --deletes M then
// removes M of them (populating the free list, which the orphan-page
// class needs). --class seeds exactly one corruption:
//
//   parent-bound         collapse an internal entry's TPBR extent
//   undercut-expiry      under-estimate an internal entry's expiry
//                        (pass --stored-expiry, and also to rexp_fsck)
//   orphan-page          drop the last persisted free-list entry
//   stale-free           append a reachable leaf to the free list
//   noncanonical-record  store a non-finite leaf coordinate
//   level-count          inflate the persisted leaf-level entry count
//   bit-rot              flip one raw byte mid-frame (checksum rot)
//   both-meta            invalidate both meta slots (salvage-only)
//   none                 build only, corrupt nothing
//
// Exit status: 0 on success, 1 when seeding fails (e.g. the index is too
// shallow for the class), 2 on usage errors.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>

#include "common/parse.h"
#include "common/random.h"
#include "common/types.h"
#include "storage/page_file.h"
#include "tree/meta_format.h"
#include "tree/node.h"
#include "tree/tree.h"
#include "tree/tree_config.h"

using namespace rexp;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index-file> [--make N] [--deletes M] --class "
               "NAME [--now T] [--life L] [--page-size N] [--stored-expiry] "
               "[--seed S]\n"
               "classes: parent-bound undercut-expiry orphan-page "
               "stale-free noncanonical-record level-count bit-rot "
               "both-meta none\n",
               argv0);
  return 2;
}

// The committed meta slot with the highest epoch (the one recovery picks).
PageId BestMetaSlot(PageFile* file, uint32_t page_size) {
  Page page(page_size);
  uint64_t best_epoch = 0;
  PageId best = kInvalidPageId;
  for (PageId slot = 0; slot < kNumMetaSlots; ++slot) {
    if (!file->ReadPage(slot, &page).ok()) continue;
    if (page.Read<uint32_t>(kMetaMagicFieldOffset) != kMetaMagic) continue;
    const uint64_t epoch = page.Read<uint64_t>(kMetaEpochFieldOffset);
    if (epoch > best_epoch && (epoch & 1) == slot) {
      best_epoch = epoch;
      best = slot;
    }
  }
  return best;
}

// Descends from the committed root to a node at `level` (0 = leaf),
// following first-child pointers. kInvalidPageId when the tree is too
// shallow.
PageId FindPageAtLevel(PageFile* file, const TreeConfig& config, int level) {
  Page page(config.page_size);
  const PageId slot = BestMetaSlot(file, config.page_size);
  if (slot == kInvalidPageId) return kInvalidPageId;
  if (!file->ReadPage(slot, &page).ok()) return kInvalidPageId;
  PageId id = page.Read<uint32_t>(kMetaRootFieldOffset);
  int node_level =
      static_cast<int>(page.Read<uint32_t>(kMetaHeightFieldOffset)) - 1;
  if (id == kInvalidPageId || node_level < level) return kInvalidPageId;
  NodeCodec<2> codec(config.page_size, config.StoresVelocities(),
                     config.store_tpbr_expiration);
  Node<2> node;
  while (node_level > level) {
    if (!file->ReadPage(id, &page).ok()) return kInvalidPageId;
    codec.Decode(page, &node);
    if (node.entries.empty()) return kInvalidPageId;
    id = node.entries[0].id;
    --node_level;
  }
  return id;
}

// Decode -> mutate -> re-encode a node page. WritePage re-seals the frame
// checksum, so the corruption is logical, not detectable as rot.
template <typename Mutator>
bool EditNode(PageFile* file, const TreeConfig& config, PageId id,
              Mutator mutate) {
  Page page(config.page_size);
  if (!file->ReadPage(id, &page).ok()) return false;
  NodeCodec<2> codec(config.page_size, config.StoresVelocities(),
                     config.store_tpbr_expiration);
  Node<2> node;
  codec.Decode(page, &node);
  if (node.entries.empty()) return false;
  mutate(&node);
  codec.Encode(node, &page);
  return file->WritePage(id, page).ok();
}

bool BuildIndex(const std::string& path, const TreeConfig& config,
                int inserts, int deletes, Time now, double life,
                uint64_t seed) {
  std::remove(path.c_str());
  auto file_or = DiskPageFile::Open(path, config.page_size, /*keep=*/true);
  if (!file_or.ok()) {
    std::fprintf(stderr, "cannot create %s: %s\n", path.c_str(),
                 file_or.status().ToString().c_str());
    return false;
  }
  auto file = std::move(file_or).value();
  auto tree = std::make_unique<Tree<2>>(config, file.get());
  Rng rng(seed);
  std::vector<std::pair<ObjectId, Tpbr<2>>> live;
  for (int i = 0; i < inserts; ++i) {
    Vec<2> pos, vel;
    for (int d = 0; d < 2; ++d) {
      pos[d] = rng.Uniform(0, 1000.0);
      vel[d] = rng.Uniform(-3.0, 3.0);
    }
    // Expire strictly after `now + life/2` so every record is live when
    // the repair gate re-verifies at --now.
    const Time t_exp = now + rng.Uniform(life / 2, life);
    Tpbr<2> p = MakeMovingPoint<2>(pos, vel, now, t_exp);
    tree->Insert(static_cast<ObjectId>(i), p, now);
    live.push_back({static_cast<ObjectId>(i), p});
  }
  for (int i = 0; i < deletes && !live.empty(); ++i) {
    size_t k = rng.UniformInt(live.size());
    if (!tree->Delete(live[k].first, live[k].second, now)) {
      std::fprintf(stderr, "delete of live record failed\n");
      return false;
    }
    live[k] = live.back();
    live.pop_back();
  }
  tree.reset();  // Commits metadata.
  file.reset();
  return true;
}

bool SeedCorruption(const std::string& path, const TreeConfig& config,
                    const std::string& cls, Time now) {
  if (cls == "bit-rot") {
    // Flip one byte in the middle of the third frame (first non-meta
    // page) directly in the file, bypassing the checksum layer.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (f == nullptr) return false;
    const long frame = 16 + static_cast<long>(config.page_size);
    if (std::fseek(f, 2 * frame + frame / 2, SEEK_SET) != 0) {
      std::fclose(f);
      return false;
    }
    int c = std::fgetc(f);
    if (c == EOF || std::fseek(f, -1, SEEK_CUR) != 0) {
      std::fclose(f);
      return false;
    }
    std::fputc(c ^ 0x40, f);
    return std::fclose(f) == 0;
  }

  auto file_or = DiskPageFile::Open(path, config.page_size, /*keep=*/true);
  if (!file_or.ok()) return false;
  auto file = std::move(file_or).value();

  if (cls == "parent-bound") {
    const PageId internal = FindPageAtLevel(file.get(), config, 1);
    if (internal == kInvalidPageId) return false;
    return EditNode(file.get(), config, internal, [](Node<2>* node) {
      node->entries[0].region.hi[0] = node->entries[0].region.lo[0];
      node->entries[0].region.vhi[0] = node->entries[0].region.vlo[0];
    });
  }
  if (cls == "undercut-expiry") {
    if (!config.store_tpbr_expiration) {
      std::fprintf(stderr, "undercut-expiry requires --stored-expiry\n");
      return false;
    }
    const PageId internal = FindPageAtLevel(file.get(), config, 1);
    if (internal == kInvalidPageId) return false;
    const Time undercut = now + 1e-3;
    return EditNode(file.get(), config, internal, [undercut](Node<2>* node) {
      node->entries[0].region.t_exp = undercut;
    });
  }
  if (cls == "noncanonical-record") {
    const PageId leaf = FindPageAtLevel(file.get(), config, 0);
    if (leaf == kInvalidPageId) return false;
    return EditNode(file.get(), config, leaf, [](Node<2>* node) {
      const double inf = std::numeric_limits<double>::infinity();
      node->entries[0].region.lo[0] = inf;
      node->entries[0].region.hi[0] = inf;
    });
  }

  const PageId slot = BestMetaSlot(file.get(), config.page_size);
  if (slot == kInvalidPageId) return false;
  Page page(config.page_size);
  if (!file->ReadPage(slot, &page).ok()) return false;

  if (cls == "orphan-page") {
    const uint32_t count = page.Read<uint32_t>(kMetaFreeCountFieldOffset);
    if (count == 0) {
      std::fprintf(stderr,
                   "orphan-page needs a non-empty free list (use "
                   "--deletes)\n");
      return false;
    }
    page.Write<uint32_t>(kMetaFreeCountFieldOffset, count - 1);
    return file->WritePage(slot, page).ok();
  }
  if (cls == "stale-free") {
    const PageId leaf = FindPageAtLevel(file.get(), config, 0);
    if (leaf == kInvalidPageId) return false;
    const uint32_t count = page.Read<uint32_t>(kMetaFreeCountFieldOffset);
    page.Write<uint32_t>(kMetaFreeListOffset + 4 * count, leaf);
    page.Write<uint32_t>(kMetaFreeCountFieldOffset, count + 1);
    return file->WritePage(slot, page).ok();
  }
  if (cls == "level-count") {
    const uint64_t leaf_count =
        page.Read<uint64_t>(kMetaLevelCountsFieldOffset);
    page.Write<uint64_t>(kMetaLevelCountsFieldOffset, leaf_count + 5);
    return file->WritePage(slot, page).ok();
  }
  if (cls == "both-meta") {
    // Invalidate both slots through the checksum layer: the frames stay
    // valid but neither parses as metadata, so only salvage can recover.
    for (PageId s = 0; s < kNumMetaSlots; ++s) {
      if (!file->ReadPage(s, &page).ok()) return false;
      page.Write<uint32_t>(kMetaMagicFieldOffset, 0xdeadbeef);
      if (!file->WritePage(s, page).ok()) return false;
    }
    return true;
  }
  std::fprintf(stderr, "unknown corruption class %s\n", cls.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string path = argv[1];
  std::string cls;
  int make = 0;
  int deletes = 0;
  Time now = 0;
  double life = 1000.0;
  uint32_t page_size = 512;
  uint64_t seed = 1;
  TreeConfig config = TreeConfig::Rexp();
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stored-expiry") == 0) {
      config.store_tpbr_expiration = true;
    } else if (std::strcmp(argv[i], "--class") == 0 ||
               std::strcmp(argv[i], "--make") == 0 ||
               std::strcmp(argv[i], "--deletes") == 0 ||
               std::strcmp(argv[i], "--now") == 0 ||
               std::strcmp(argv[i], "--life") == 0 ||
               std::strcmp(argv[i], "--page-size") == 0 ||
               std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag %s requires a value\n", argv[i]);
        return Usage(argv[0]);
      }
      const char* value = argv[i + 1];
      bool value_ok = true;
      if (std::strcmp(argv[i], "--class") == 0) {
        cls = value;
      } else if (std::strcmp(argv[i], "--make") == 0) {
        int32_t v = 0;
        value_ok = ParseI32(value, &v) && v >= 0;
        make = v;
      } else if (std::strcmp(argv[i], "--deletes") == 0) {
        int32_t v = 0;
        value_ok = ParseI32(value, &v) && v >= 0;
        deletes = v;
      } else if (std::strcmp(argv[i], "--now") == 0) {
        value_ok = ParseDouble(value, &now);
      } else if (std::strcmp(argv[i], "--life") == 0) {
        value_ok = ParsePositiveDouble(value, &life);
      } else if (std::strcmp(argv[i], "--page-size") == 0) {
        value_ok = ParsePositiveU32(value, &page_size);
      } else {
        value_ok = ParseU64(value, &seed);
      }
      if (!value_ok) {
        std::fprintf(stderr, "flag %s: invalid value '%s'\n", argv[i],
                     value);
        return Usage(argv[0]);
      }
      ++i;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }
  if (cls.empty()) {
    std::fprintf(stderr, "--class is required (use 'none' to build only)\n");
    return Usage(argv[0]);
  }
  config.page_size = page_size;
  config.buffer_frames = 64;

  if (make > 0 &&
      !BuildIndex(path, config, make, deletes, now, life, seed)) {
    return 1;
  }
  if (cls != "none" && !SeedCorruption(path, config, cls, now)) {
    std::fprintf(stderr, "seeding class %s failed\n", cls.c_str());
    return 1;
  }
  return 0;
}
